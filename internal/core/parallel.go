package core

import (
	"fmt"
	"runtime"
	"sync"

	"bolt/internal/forest"
	"bolt/internal/tree"
)

// PartitionedEngine parallelises one sample across cores by splitting
// the dictionary into d partitions and the lookup table into t
// partitions (§4.2, Fig. 4). Worker (i, j) scans dictionary partition i
// and performs only the lookups owned by table partition j; every
// candidate lookup is owned by exactly one worker, so aggregation over
// all d·t workers counts each matched path once — the §4.5 guarantee,
// which TestPartitionCoverage property-tests.
//
// Table ownership is by hash: key k belongs to partition
// (primary-slot(k) * t) / slots. With cuckoo hashing a key's two slots
// may straddle partition boundaries, so ownership follows the primary
// slot, preserving "exactly one core performs each lookup" without
// losing the bounded two-probe lookup.
//
// The engine dispatches its workers onto a persistent Runtime (one
// goroutine per worker, created once and reused for every sample)
// instead of spawning goroutines per call: the per-worker vote
// accumulators live on the runtime workers, so a steady-state Votes
// call allocates nothing (TestPartitionedVotesZeroAlloc). Calls are
// serialised by the runtime's dispatch lock; concurrent callers queue.
type PartitionedEngine struct {
	bf         *Forest
	dictParts  int
	tableParts int
	dictBounds []int // dictBounds[i] .. dictBounds[i+1] is partition i
	workers    []partWorker
	rt         *Runtime
	s          *Scratch // input-encoding scratch, guarded by rt's dispatch lock

	// predictMu guards predictVotes, the reusable buffer Predict and
	// PredictValue aggregate into (Votes has its own serialisation).
	predictMu    sync.Mutex
	predictVotes []int64
}

type partWorker struct {
	dictLo, dictHi int
	tablePart      int
}

// NewPartitioned builds an engine with the given dictionary and table
// partition counts; the worker count ("cores", per §5: "the final
// number of cores must be t × d") is their product. Counts beyond the
// runtime's worker budget are clamped (dictParts first to the
// dictionary size, then d·t to the pool maximum) so that every
// partition is always backed by a live worker — a partition without a
// worker would silently drop its votes. The engine's runtime workers
// are released by a finalizer when the engine is dropped, or eagerly
// via Close.
func NewPartitioned(bf *Forest, dictParts, tableParts int) (*PartitionedEngine, error) {
	if dictParts < 1 || tableParts < 1 {
		return nil, fmt.Errorf("core: partition counts must be >= 1 (got d=%d t=%d)", dictParts, tableParts)
	}
	if dictParts > len(bf.Dict.Entries) {
		dictParts = len(bf.Dict.Entries)
		if dictParts == 0 {
			dictParts = 1
		}
	}
	if dictParts > maxRuntimeWorkers {
		dictParts = maxRuntimeWorkers
	}
	if tableParts > maxRuntimeWorkers/dictParts {
		tableParts = maxRuntimeWorkers / dictParts
	}
	pe := &PartitionedEngine{
		bf:           bf,
		dictParts:    dictParts,
		tableParts:   tableParts,
		s:            bf.NewScratch(),
		predictVotes: make([]int64, bf.VoteWidth()),
	}
	n := len(bf.Dict.Entries)
	pe.dictBounds = make([]int, dictParts+1)
	for i := 0; i <= dictParts; i++ {
		pe.dictBounds[i] = i * n / dictParts
	}
	for di := 0; di < dictParts; di++ {
		for tj := 0; tj < tableParts; tj++ {
			pe.workers = append(pe.workers, partWorker{
				dictLo:    pe.dictBounds[di],
				dictHi:    pe.dictBounds[di+1],
				tablePart: tj,
			})
		}
	}
	pe.rt = NewRuntime(bf, len(pe.workers))
	st := pe.rt.runtimeState
	if len(st.workers) != len(pe.workers) {
		// Unreachable after the clamps above, but a partition without a
		// worker means silently dropped votes — fail loudly, never scan
		// a subset.
		pe.rt.Close()
		return nil, fmt.Errorf("core: runtime built %d workers for %d partitions", len(st.workers), len(pe.workers))
	}
	// Workers need only the table-ownership parameter, not the engine:
	// a back-pointer to pe would make pe.rt reachable from the parked
	// worker goroutines and the runtime's finalizer could never fire.
	st.tableParts = pe.tableParts
	for i, w := range st.workers {
		w.part = pe.workers[i]
	}
	return pe, nil
}

// Cores returns the number of workers (d × t).
func (pe *PartitionedEngine) Cores() int { return len(pe.workers) }

// Close releases the engine's runtime workers; further calls fall back
// to a serial in-place scan of every partition.
func (pe *PartitionedEngine) Close() { pe.rt.Close() }

// tableOwner maps a key to its owning table partition via its primary
// slot index.
func (pe *PartitionedEngine) tableOwner(key uint64) int {
	slot := pe.bf.Table.h1(key)
	return int(slot * uint64(pe.tableParts) / uint64(pe.bf.Table.NumSlots()))
}

// Votes runs one sample across all workers and aggregates their votes.
// The predicate bitset is computed once and shared read-only, mirroring
// the paper's single input encoding distributed to cores. Steady-state
// calls allocate nothing: the scratch, the workers and their
// accumulators are created once with the engine.
func (pe *PartitionedEngine) Votes(x []float32, votes []int64) {
	if len(votes) != pe.bf.VoteWidth() {
		panicBufLen("votes", len(votes), pe.bf.VoteWidth())
	}
	st := pe.rt.runtimeState
	st.mu.Lock()
	defer st.mu.Unlock()
	pe.bf.Codebook.Evaluate(x, pe.s.bits)
	st.bits = pe.s.bits.Words()
	// Deferred so a worker panic re-raised by dispatch cannot leave the
	// stale predicate words pinned on the runtime.
	defer func() { st.bits = nil }()
	if st.closed {
		// Runtime released: run every partition's scan on the calling
		// goroutine. Same code path as the workers, same accumulators,
		// same merge — just sequential.
		for _, w := range st.workers {
			w.runPartitionShard(st)
		}
		st.mergePartitionVotes(votes)
	} else {
		st.partitionVotes(votes)
	}
	runtime.KeepAlive(pe.rt)
}

// Predict returns the weighted-majority class for x (classification
// engines).
func (pe *PartitionedEngine) Predict(x []float32) int {
	pe.predictMu.Lock()
	defer pe.predictMu.Unlock()
	pe.Votes(x, pe.predictVotes)
	return forest.Argmax(pe.predictVotes)
}

// PredictValue returns the regression output for x (regression
// engines), with the same aggregation as Forest.PredictValue.
func (pe *PartitionedEngine) PredictValue(x []float32) float32 {
	bf := pe.bf
	if bf.Kind != tree.Regression {
		panic("core: PredictValue on a classification engine")
	}
	pe.predictMu.Lock()
	defer pe.predictMu.Unlock()
	pe.Votes(x, pe.predictVotes)
	denom := bf.TotalWeight
	if bf.Additive {
		denom = forest.WeightOne
	}
	return float32(float64(bf.Bias+pe.predictVotes[0]) / float64(denom))
}
