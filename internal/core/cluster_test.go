package core

import (
	"testing"

	"bolt/internal/paths"
)

// fig3Paths builds the path list of Fig. 3 step 2 with predicates
// a=0, b=1, c=2, h=3 (already lexicographically sorted):
//
//	(a,0)(b,0) ; (a,0)(b,1) ; (a,0)(h,0) ; (a,1)(c,0) ; (a,1)(c,1) ;
//	(a,1)(h,0) ; (c,0)(h,1) ; (c,1)(h,1)
func fig3Paths() []paths.Path {
	mk := func(prs ...paths.Pair) paths.Path {
		return paths.Path{Pairs: prs, VoteAdd: 1}
	}
	p := func(pred int32, val bool) paths.Pair { return paths.Pair{Pred: pred, Val: val} }
	const a, b, c, h = 0, 1, 2, 3
	return []paths.Path{
		mk(p(a, false), p(b, false)),
		mk(p(a, false), p(b, true)),
		mk(p(a, false), p(h, false)),
		mk(p(a, true), p(c, false)),
		mk(p(a, true), p(c, true)),
		mk(p(a, true), p(h, false)),
		mk(p(c, false), p(h, true)),
		mk(p(c, true), p(h, true)),
	}
}

func TestBuildClustersFig3(t *testing.T) {
	ps := fig3Paths()
	paths.Sort(ps)
	clusters := BuildClusters(ps, 2)
	// With threshold 2, the paper's example groups into three clusters
	// with commons (a,0), (a,1), (h,1).
	if len(clusters) != 3 {
		t.Fatalf("got %d clusters, want 3: %+v", len(clusters), clusters)
	}
	const a, c, h = 0, 2, 3
	wantCommon := [][]paths.Pair{
		{{Pred: a, Val: false}},
		{{Pred: a, Val: true}},
		{{Pred: h, Val: true}},
	}
	wantUncommon := [][]int32{{1, 3}, {c, 3}, {c}}
	for i, cl := range clusters {
		if len(cl.Common) != len(wantCommon[i]) {
			t.Errorf("cluster %d common %v, want %v", i, cl.Common, wantCommon[i])
			continue
		}
		for j := range cl.Common {
			if cl.Common[j] != wantCommon[i][j] {
				t.Errorf("cluster %d common %v, want %v", i, cl.Common, wantCommon[i])
			}
		}
		if len(cl.Uncommon) != len(wantUncommon[i]) {
			t.Errorf("cluster %d uncommon %v, want %v", i, cl.Uncommon, wantUncommon[i])
			continue
		}
		for j := range cl.Uncommon {
			if cl.Uncommon[j] != wantUncommon[i][j] {
				t.Errorf("cluster %d uncommon %v, want %v", i, cl.Uncommon, wantUncommon[i])
			}
		}
	}
	// Every path in exactly one cluster.
	seen := make([]int, len(ps))
	for _, cl := range clusters {
		for _, pi := range cl.Paths {
			seen[pi]++
		}
	}
	for i, n := range seen {
		if n != 1 {
			t.Errorf("path %d appears in %d clusters", i, n)
		}
	}
}

func TestBuildClustersThresholdZero(t *testing.T) {
	ps := fig3Paths()
	paths.Sort(ps)
	clusters := BuildClusters(ps, 0)
	// Threshold 0 only merges identical pair-sets; all 8 are distinct.
	if len(clusters) != 8 {
		t.Fatalf("threshold 0 produced %d clusters, want 8", len(clusters))
	}
	for i, cl := range clusters {
		if len(cl.Uncommon) != 0 {
			t.Errorf("cluster %d has uncommon %v under threshold 0", i, cl.Uncommon)
		}
	}
}

func TestBuildClustersMergesIdenticalPaths(t *testing.T) {
	p := paths.Path{Pairs: []paths.Pair{{Pred: 0, Val: true}}, VoteAdd: 1}
	ps := []paths.Path{p, p, p}
	clusters := BuildClusters(ps, 0)
	if len(clusters) != 1 || len(clusters[0].Paths) != 3 {
		t.Fatalf("identical paths not merged: %+v", clusters)
	}
}

func TestBuildClustersLargeThresholdSingleCluster(t *testing.T) {
	ps := fig3Paths()
	paths.Sort(ps)
	clusters := BuildClusters(ps, 100)
	if len(clusters) != 1 {
		t.Fatalf("huge threshold produced %d clusters, want 1", len(clusters))
	}
	// Union of predicates is {a,b,c,h}; nothing is common to all paths.
	if len(clusters[0].Common) != 0 {
		t.Errorf("unexpected common pairs %v", clusters[0].Common)
	}
	if len(clusters[0].Uncommon) != 4 {
		t.Errorf("uncommon %v, want all four predicates", clusters[0].Uncommon)
	}
}

func TestBuildClustersInvariants(t *testing.T) {
	ps := fig3Paths()
	paths.Sort(ps)
	for _, threshold := range []int{0, 1, 2, 3, 5} {
		clusters := BuildClusters(ps, threshold)
		for ci, cl := range clusters {
			if len(cl.Uncommon) > threshold {
				t.Errorf("threshold %d cluster %d has %d uncommon", threshold, ci, len(cl.Uncommon))
			}
			commonSet := map[int32]bool{}
			for _, pr := range cl.Common {
				commonSet[pr.Pred] = pr.Val
			}
			for _, pi := range cl.Paths {
				// Every common pair present in every member path.
				pathPairs := map[int32]bool{}
				for _, pr := range ps[pi].Pairs {
					pathPairs[pr.Pred] = pr.Val
				}
				for pred, val := range commonSet {
					if v, ok := pathPairs[pred]; !ok || v != val {
						t.Errorf("threshold %d cluster %d: common pair (%d,%v) missing from path %d",
							threshold, ci, pred, val, pi)
					}
				}
				// Every path pair is either common or uncommon.
				for _, pr := range ps[pi].Pairs {
					if _, ok := commonSet[pr.Pred]; ok {
						continue
					}
					found := false
					for _, u := range cl.Uncommon {
						if u == pr.Pred {
							found = true
							break
						}
					}
					if !found {
						t.Errorf("threshold %d cluster %d: pair %v neither common nor uncommon",
							threshold, ci, pr)
					}
				}
			}
		}
	}
}

func TestBuildClustersPanics(t *testing.T) {
	sorted := fig3Paths()
	paths.Sort(sorted)
	t.Run("negative threshold", func(t *testing.T) {
		defer func() {
			if recover() == nil {
				t.Fatal("expected panic")
			}
		}()
		BuildClusters(sorted, -1)
	})
	t.Run("unsorted input", func(t *testing.T) {
		unsorted := []paths.Path{sorted[3], sorted[0]}
		defer func() {
			if recover() == nil {
				t.Fatal("expected panic")
			}
		}()
		BuildClusters(unsorted, 2)
	})
}

func TestBuildClustersEmpty(t *testing.T) {
	if got := BuildClusters(nil, 3); got != nil {
		t.Errorf("empty input produced clusters %v", got)
	}
}
