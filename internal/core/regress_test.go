package core

import (
	"bytes"
	"testing"
	"testing/quick"

	"bolt/internal/dataset"
	"bolt/internal/forest"
	"bolt/internal/tree"
)

func regressionForests(t testing.TB) (*forest.Forest, *forest.Forest, *dataset.Dataset) {
	t.Helper()
	d := dataset.SyntheticFriedman(600, 0.5, 151)
	rf := forest.TrainRegressionForest(d, forest.Config{NumTrees: 10, Tree: tree.Config{MaxDepth: 4}, Seed: 152})
	gbt := forest.TrainGBT(d, forest.GBTConfig{Rounds: 15, Tree: tree.Config{MaxDepth: 3, MaxFeatures: -1}, Seed: 153})
	return rf, gbt, d
}

// The regression safety property: Bolt's integer contribution sum
// equals the forest's for every input, for both bagged (mean) and
// boosted (additive) ensembles.
func TestRegressionSafety(t *testing.T) {
	rf, gbt, d := regressionForests(t)
	X := append(append([][]float32{}, d.X[:200]...), randomInputs(200, d.NumFeatures, 154)...)
	for name, f := range map[string]*forest.Forest{"bagged": rf, "boosted": gbt} {
		for _, th := range []int{1, 4, 8} {
			bf, err := Compile(f, Options{ClusterThreshold: th, Seed: 155})
			if err != nil {
				t.Fatalf("%s th=%d: %v", name, th, err)
			}
			if bf.Kind != tree.Regression || bf.VoteWidth() != 1 {
				t.Fatalf("%s: compiled forest lost regression kind", name)
			}
			if err := bf.CheckSafety(f, X); err != nil {
				t.Errorf("%s th=%d: %v", name, th, err)
			}
		}
	}
}

// PredictValue must equal the plain forest's float output exactly (same
// integer sum, same single division).
func TestRegressionPredictValueExact(t *testing.T) {
	rf, gbt, d := regressionForests(t)
	for name, f := range map[string]*forest.Forest{"bagged": rf, "boosted": gbt} {
		bf, err := Compile(f, Options{ClusterThreshold: 4})
		if err != nil {
			t.Fatal(err)
		}
		s := bf.NewScratch()
		for i, x := range d.X[:200] {
			if got, want := bf.PredictValue(x, s), f.PredictValue(x); got != want {
				t.Fatalf("%s sample %d: bolt %g != forest %g", name, i, got, want)
			}
		}
	}
}

func TestRegressionKindGuards(t *testing.T) {
	rf, _, d := regressionForests(t)
	bf, err := Compile(rf, Options{})
	if err != nil {
		t.Fatal(err)
	}
	s := bf.NewScratch()
	t.Run("Predict on regression", func(t *testing.T) {
		defer func() {
			if recover() == nil {
				t.Fatal("expected panic")
			}
		}()
		bf.Predict(d.X[0], s)
	})

	clf, cd := trainForest(t, 156, 5, 3)
	cbf, err := Compile(clf, Options{})
	if err != nil {
		t.Fatal(err)
	}
	cs := cbf.NewScratch()
	t.Run("PredictValue on classification", func(t *testing.T) {
		defer func() {
			if recover() == nil {
				t.Fatal("expected panic")
			}
		}()
		cbf.PredictValue(cd.X[0], cs)
	})
}

func TestRegressionCompiledRoundTrip(t *testing.T) {
	_, gbt, d := regressionForests(t)
	bf, err := Compile(gbt, Options{ClusterThreshold: 4})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := EncodeCompiled(&buf, bf); err != nil {
		t.Fatal(err)
	}
	back, err := DecodeCompiled(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Kind != tree.Regression || back.Bias != bf.Bias || back.Additive != bf.Additive {
		t.Fatal("regression aggregation fields lost")
	}
	s1, s2 := bf.NewScratch(), back.NewScratch()
	for _, x := range d.X[:100] {
		if bf.PredictValue(x, s1) != back.PredictValue(x, s2) {
			t.Fatal("decoded regression artifact diverges")
		}
	}
}

func TestRegressionPartitionedMatches(t *testing.T) {
	rf, _, d := regressionForests(t)
	bf, err := Compile(rf, Options{ClusterThreshold: 2})
	if err != nil {
		t.Fatal(err)
	}
	pe, err := NewPartitioned(bf, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	s := bf.NewScratch()
	serial := make([]int64, 1)
	parallel := make([]int64, 1)
	for _, x := range d.X[:60] {
		bf.Votes(x, s, serial)
		pe.Votes(x, parallel)
		if serial[0] != parallel[0] {
			t.Fatal("partitioned regression votes diverge")
		}
	}
}

// Property: regression safety holds for arbitrary GBT shapes.
func TestRegressionSafetyQuick(t *testing.T) {
	check := func(seed uint64, roundsRaw, depthRaw uint8) bool {
		rounds := int(roundsRaw%10) + 2
		depth := int(depthRaw%3) + 2
		d := dataset.SyntheticFriedman(150, 1, seed)
		f := forest.TrainGBT(d, forest.GBTConfig{
			Rounds: rounds, Tree: tree.Config{MaxDepth: depth, MaxFeatures: -1}, Seed: seed,
		})
		bf, err := Compile(f, Options{ClusterThreshold: 4, Seed: seed})
		if err != nil {
			t.Logf("compile: %v", err)
			return false
		}
		return bf.CheckSafety(f, d.X[:80]) == nil
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}
