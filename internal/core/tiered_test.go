package core

import (
	"bytes"
	"testing"

	"bolt/internal/forest"
)

// compileTiered builds a tiered forest for tests: half the trees in
// tier 0 unless an explicit split is given.
func compileTiered(t testing.TB, seed uint64, trees, depth, tierTrees int) (*Forest, *forest.Forest, [][]float32) {
	t.Helper()
	f, d := trainForest(t, seed, trees, depth)
	bf, err := Compile(f, Options{ClusterThreshold: 4, TierTrees: tierTrees, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return bf, f, d.X
}

// TestTieredCompileBoundary verifies the compile-time split: the tier-0
// entry prefix is non-trivial, recorded identically on both layouts,
// and the tier weight is exactly the summed weight of the tier-1 trees.
func TestTieredCompileBoundary(t *testing.T) {
	bf, f, _ := compileTiered(t, 401, 12, 4, 6)
	if !bf.Tiered() {
		t.Fatalf("forest with TierTrees=6 of 12 is not tiered (entries=%d of %d)", bf.TierEntries, bf.Flat.Len())
	}
	if bf.TierEntries <= 0 || bf.TierEntries >= bf.Flat.Len() {
		t.Fatalf("tier boundary %d not interior to [1,%d)", bf.TierEntries, bf.Flat.Len())
	}
	if got := bf.Flat.TierEntries(); got != bf.TierEntries {
		t.Errorf("flat layout boundary %d, forest records %d", got, bf.TierEntries)
	}
	if got := bf.Compact.TierEntries(); got != bf.TierEntries {
		t.Errorf("compact layout boundary %d, forest records %d", got, bf.TierEntries)
	}
	want := int64(0)
	for i := 6; i < 12; i++ {
		want += f.Weight(i)
	}
	if bf.TierWeight != want {
		t.Errorf("tier weight %d, want %d", bf.TierWeight, want)
	}
	if bf.ExactTierMargin() != bf.TierWeight {
		t.Errorf("exact margin %d != tier weight %d", bf.ExactTierMargin(), bf.TierWeight)
	}
}

// TestTieredDisabled covers the degenerate splits: 0, negative, and at
// or beyond the tree count all compile untier'd and stay bit-exact
// with the default compilation.
func TestTieredDisabled(t *testing.T) {
	f, d := trainForest(t, 402, 8, 4)
	base, err := Compile(f, Options{ClusterThreshold: 4})
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []int{0, -3, 8, 20} {
		bf, err := Compile(f, Options{ClusterThreshold: 4, TierTrees: k})
		if err != nil {
			t.Fatal(err)
		}
		if bf.Tiered() || bf.TierEntries != 0 || bf.TierTrees != 0 || bf.TierWeight != 0 {
			t.Fatalf("TierTrees=%d should compile untier'd, got trees=%d entries=%d weight=%d",
				k, bf.TierTrees, bf.TierEntries, bf.TierWeight)
		}
		if bf.Flat.Len() != base.Flat.Len() {
			t.Fatalf("TierTrees=%d changed the dictionary: %d entries vs %d", k, bf.Flat.Len(), base.Flat.Len())
		}
		var ts TierStats
		s := bf.NewScratch()
		out := make([]int, len(d.X))
		bf.PredictBatchTieredInto(d.X, s, -1, out, &ts)
		if ts.Tier0Answered != 0 || ts.Escalated != int64(len(d.X)) {
			t.Fatalf("untier'd fallback stats = %+v, want all escalated", ts)
		}
		for i, x := range d.X {
			if want := bf.Predict(x, s); out[i] != want {
				t.Fatalf("untier'd fallback label %d = %d, want %d", i, out[i], want)
			}
		}
	}
}

// TestTieredSafety runs the full CheckSafety suite — which now includes
// the exact-mode tiered proof on both layouts and the parallel path —
// over several tier splits.
func TestTieredSafety(t *testing.T) {
	for _, k := range []int{1, 3, 6, 11} {
		bf, f, X := compileTiered(t, 403, 12, 4, k)
		if !bf.Tiered() {
			t.Fatalf("TierTrees=%d: not tiered", k)
		}
		if err := bf.CheckSafety(f, X); err != nil {
			t.Fatalf("TierTrees=%d: %v", k, err)
		}
	}
}

// TestTieredExactMatchesMonolithic asserts the headline exactness claim
// directly on a decently sized batch, checking stats consistency and
// that tier 0 answers at least something at the exact margin. The split
// puts a majority of the trees in tier 0: a sample's lead can never
// exceed tier-0's own summed weight, so exact-mode decisions are only
// attainable when tier-0 outweighs tier-1 (the blobs are well
// separated, so confident samples then exist).
func TestTieredExactMatchesMonolithic(t *testing.T) {
	bf, _, X := compileTiered(t, 404, 16, 5, 12)
	s := bf.NewScratch()
	want := make([]int, len(X))
	bf.PredictBatchInto(X, s, want)
	got := make([]int, len(X))
	var ts TierStats
	bf.PredictBatchTieredInto(X, s, -1, got, &ts)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("sample %d: tiered=%d monolithic=%d", i, got[i], want[i])
		}
	}
	if ts.Total() != int64(len(X)) {
		t.Fatalf("stats cover %d of %d samples", ts.Total(), len(X))
	}
	if ts.Tier0Answered == 0 {
		t.Errorf("exact mode answered nothing at tier 0 (escalation rate %.2f)", ts.EscalationRate())
	}
}

// TestTieredCalibration checks CalibrateTier's contract: the returned
// threshold respects the loss budget on the holdout, is clamped to the
// exact margin, and is monotone in the budget.
func TestTieredCalibration(t *testing.T) {
	bf, _, X := compileTiered(t, 405, 12, 4, 3)
	s := bf.NewScratch()
	want := make([]int, len(X))
	bf.PredictBatchInto(X, s, want)

	prev := int64(-1)
	for _, budget := range []float64{0, 0.01, 0.05, 0.5, 1} {
		thr, err := CalibrateTier(bf, X, budget)
		if err != nil {
			t.Fatal(err)
		}
		if thr < 0 || thr > bf.ExactTierMargin() {
			t.Fatalf("budget %v: threshold %d outside [0, %d]", budget, thr, bf.ExactTierMargin())
		}
		if prev >= 0 && thr > prev {
			t.Fatalf("threshold not monotone: budget %v gave %d after %d", budget, thr, prev)
		}
		prev = thr
		got := make([]int, len(X))
		bf.PredictBatchTieredInto(X, s, thr, got, nil)
		diverged := 0
		for i := range want {
			if got[i] != want[i] {
				diverged++
			}
		}
		if allowed := int(budget * float64(len(X))); diverged > allowed {
			t.Fatalf("budget %v (<=%d samples): %d diverged at threshold %d", budget, allowed, diverged, thr)
		}
	}

	if _, err := CalibrateTier(bf, nil, 0.1); err == nil {
		t.Error("CalibrateTier accepted an empty holdout")
	}
	if _, err := CalibrateTier(bf, X, -0.1); err == nil {
		t.Error("CalibrateTier accepted a negative budget")
	}
	flat, err := Compile(mustForest(t, 406), Options{ClusterThreshold: 4})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := CalibrateTier(flat, X, 0.1); err == nil {
		t.Error("CalibrateTier accepted an untier'd forest")
	}
}

func mustForest(t *testing.T, seed uint64) *forest.Forest {
	f, _ := trainForest(t, seed, 8, 4)
	return f
}

// TestTieredModelRoundTrip proves the tier boundary survives
// serialization: encode, decode, and compare the tier fields, the
// per-layout boundaries, and the tiered predictions (including a stored
// calibrated margin).
func TestTieredModelRoundTrip(t *testing.T) {
	bf, _, X := compileTiered(t, 407, 10, 4, 5)
	thr, err := CalibrateTier(bf, X, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	bf.SetTierMargin(thr)
	var buf bytes.Buffer
	if err := EncodeCompiled(&buf, bf); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeCompiled(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.TierTrees != bf.TierTrees || got.TierEntries != bf.TierEntries ||
		got.TierWeight != bf.TierWeight || got.TierMargin != thr {
		t.Fatalf("tier fields did not round trip: got (%d,%d,%d,%d) want (%d,%d,%d,%d)",
			got.TierTrees, got.TierEntries, got.TierWeight, got.TierMargin,
			bf.TierTrees, bf.TierEntries, bf.TierWeight, thr)
	}
	if got.Flat.TierEntries() != bf.TierEntries || got.Compact.TierEntries() != bf.TierEntries {
		t.Fatalf("layout boundaries did not round trip: flat=%d compact=%d want %d",
			got.Flat.TierEntries(), got.Compact.TierEntries(), bf.TierEntries)
	}
	if got.Options().TierTrees != bf.TierTrees {
		t.Errorf("options TierTrees %d, want %d", got.Options().TierTrees, bf.TierTrees)
	}
	s, gs := bf.NewScratch(), got.NewScratch()
	want := make([]int, len(X))
	out := make([]int, len(X))
	bf.PredictBatchTieredInto(X, s, -1, want, nil)
	got.PredictBatchTieredInto(X, gs, -1, out, nil)
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("decoded tiered label %d = %d, want %d", i, out[i], want[i])
		}
	}
}

// TestTieredVotesParallelStats checks the parallel entry point's stats
// sum across shards and the labels agree with the serial tiered path
// at a calibrated (lossy) margin too — the parallel and serial kernels
// must agree with each other at any margin, not just the exact one.
func TestTieredVotesParallelStats(t *testing.T) {
	bf, _, X := compileTiered(t, 408, 12, 4, 4)
	s := bf.NewScratch()
	for _, margin := range []int64{-1, 0, bf.TierWeight / 2} {
		want := make([]int, len(X))
		var wantTS TierStats
		bf.PredictBatchTieredInto(X, s, margin, want, &wantTS)
		for workers := 2; workers <= 4; workers++ {
			rt := NewRuntime(bf, workers)
			got := make([]int, len(X))
			var ts TierStats
			bf.PredictBatchTieredParallelInto(X, rt, margin, got, &ts)
			rt.Close()
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("margin %d workers %d: sample %d parallel=%d serial=%d", margin, workers, i, got[i], want[i])
				}
			}
			if ts.Total() != int64(len(X)) {
				t.Fatalf("margin %d workers %d: stats cover %d of %d", margin, workers, ts.Total(), len(X))
			}
			if ts != wantTS {
				t.Fatalf("margin %d workers %d: parallel stats %+v != serial %+v", margin, workers, ts, wantTS)
			}
		}
	}
}

// FuzzTieredDifferential is the tiered differential fuzz target: over
// random forest shapes, compile options, tier splits, margins and batch
// geometries, exact-mode tiered labels must equal the row path's on
// both layouts, escalated vote rows must be bit-exact, and calibrated
// margins must only ever decide samples whose lead clears them.
func FuzzTieredDifferential(f *testing.F) {
	f.Add(uint64(1), uint8(4), uint8(6), uint8(3), uint8(2), uint16(70), uint16(0), int64(-1))
	f.Add(uint64(2), uint8(1), uint8(4), uint8(1), uint8(1), uint16(1), uint16(64), int64(0))
	f.Add(uint64(3), uint8(16), uint8(12), uint8(5), uint8(7), uint16(129), uint16(100), int64(1000))
	f.Add(uint64(4), uint8(8), uint8(9), uint8(2), uint8(12), uint16(64), uint16(1), int64(-1))

	f.Fuzz(func(t *testing.T, seed uint64, thresholdRaw, treesRaw, depthRaw, tierRaw uint8, nRaw, blockRaw uint16, margin int64) {
		trees := int(treesRaw%12) + 2
		depth := int(depthRaw%5) + 1
		fr, d := trainForest(t, seed, trees, depth)
		opts := Options{
			ClusterThreshold: int(thresholdRaw%16) + 1,
			Seed:             seed,
			TierTrees:        int(tierRaw) % (trees + 2), // includes 0 and >= trees
		}
		if thresholdRaw%3 == 0 {
			opts.BloomBitsPerKey = -1
		}
		bf, err := Compile(fr, opts)
		if err != nil {
			t.Fatalf("compile failed: %v", err)
		}
		n := int(nRaw % 300)
		X := randomInputs(n, d.NumFeatures, seed^0x71e4)
		vw := bf.VoteWidth()
		row := make([]int64, vw)
		ref := make([]int64, n*vw)
		refLabels := make([]int, n)
		rs := bf.NewScratch()
		for i, x := range X {
			bf.Votes(x, rs, row)
			copy(ref[i*vw:(i+1)*vw], row)
			refLabels[i] = forest.Argmax(row)
		}
		for _, compact := range []bool{false, true} {
			bf.SetCompactScan(compact)
			s := bf.NewScratch()
			s.SetBatchBlock(int(blockRaw % 512))
			votes := make([]int64, n*vw)
			var ts TierStats
			bf.VotesBatchTiered(X, s, votes, -1, &ts)
			out := make([]int, n)
			bf.PredictBatchTieredInto(X, s, -1, out, nil)
			if ts.Total() != int64(n) {
				t.Fatalf("compact=%v: stats cover %d of %d", compact, ts.Total(), n)
			}
			for i := 0; i < n; i++ {
				if out[i] != refLabels[i] {
					t.Fatalf("seed=%d compact=%v tier=%d: exact tiered flips sample %d: %d vs %d",
						seed, compact, bf.TierTrees, i, out[i], refLabels[i])
				}
				r := votes[i*vw : (i+1)*vw]
				if forest.Argmax(r) != refLabels[i] {
					t.Fatalf("seed=%d compact=%v: tiered votes argmax flips sample %d", seed, compact, i)
				}
				full := true
				for c := 0; c < vw; c++ {
					if r[c] != ref[i*vw+c] {
						full = false
						break
					}
				}
				if !full && tierLead(r) <= bf.TierWeight {
					t.Fatalf("seed=%d compact=%v: sample %d decided with lead %d <= margin %d",
						seed, compact, i, tierLead(r), bf.TierWeight)
				}
			}
			// Calibrated sweep: any non-negative margin must only decide
			// samples whose tier-0 lead strictly clears it, and escalated
			// rows stay bit-exact with the reference votes.
			if margin < 0 {
				margin = -margin
			}
			m := margin % (bf.TierWeight + 1)
			bf.VotesBatchTiered(X, s, votes, m, &ts)
			for i := 0; i < n; i++ {
				r := votes[i*vw : (i+1)*vw]
				full := true
				for c := 0; c < vw; c++ {
					if r[c] != ref[i*vw+c] {
						full = false
						break
					}
				}
				if !full && tierLead(r) <= m {
					t.Fatalf("seed=%d compact=%v margin=%d: sample %d decided without clearing the margin",
						seed, compact, m, i)
				}
			}
		}
	})
}

// BenchmarkTieredKernel pins the tiered kernel into the CI bitrot
// sweep: exact mode over the active layout, compared implicitly against
// BenchmarkBatch-style numbers in profiling runs.
func BenchmarkTieredKernel(b *testing.B) {
	f, d := trainForest(b, 409, 16, 5)
	bf, err := Compile(f, Options{ClusterThreshold: 4, TierTrees: 4})
	if err != nil {
		b.Fatal(err)
	}
	s := bf.NewScratch()
	out := make([]int, len(d.X))
	bf.PredictBatchTieredInto(d.X, s, -1, out, nil) // warm scratch
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bf.PredictBatchTieredInto(d.X, s, -1, out, nil)
	}
	b.SetBytes(int64(len(d.X)))
}
