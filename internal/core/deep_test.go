package core

import (
	"testing"

	"bolt/internal/dataset"
	"bolt/internal/forest"
	"bolt/internal/tree"
)

func trainDeep(t testing.TB) (*forest.DeepForest, *dataset.Dataset) {
	t.Helper()
	d := dataset.SyntheticBlobs(300, 6, 3, 1.2, 111)
	df := forest.TrainDeep(d, forest.DeepConfig{
		NumLayers:       2,
		ForestsPerLayer: 2,
		Forest:          forest.Config{NumTrees: 6, Tree: tree.Config{MaxDepth: 3}},
		Seed:            112,
	})
	if err := df.Validate(); err != nil {
		t.Fatal(err)
	}
	return df, d
}

// The cascade safety property: compiled deep Bolt votes equal the plain
// cascade's for every input, including the float32 probability features
// passed between layers.
func TestDeepSafety(t *testing.T) {
	df, d := trainDeep(t)
	db, err := CompileDeep(df, Options{ClusterThreshold: 4})
	if err != nil {
		t.Fatal(err)
	}
	X := append(append([][]float32{}, d.X...), randomInputs(200, d.NumFeatures, 113)...)
	if err := db.CheckSafety(df, X); err != nil {
		t.Fatal(err)
	}
}

func TestDeepPredictMatches(t *testing.T) {
	df, d := trainDeep(t)
	db, err := CompileDeep(df, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range d.X[:100] {
		if db.Predict(x) != df.Predict(x) {
			t.Fatal("deep bolt prediction diverges")
		}
	}
}

func TestDeepCompileRejectsInvalid(t *testing.T) {
	if _, err := CompileDeep(&forest.DeepForest{NumFeatures: 1, NumClasses: 1}, Options{}); err == nil {
		t.Fatal("invalid cascade compiled")
	}
}

func TestDeepPanicsOnBadShapes(t *testing.T) {
	df, _ := trainDeep(t)
	db, err := CompileDeep(df, Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Run("bad input width", func(t *testing.T) {
		defer func() {
			if recover() == nil {
				t.Fatal("expected panic")
			}
		}()
		db.VotesInto(make([]float32, 1), make([]int64, db.NumClasses))
	})
	t.Run("bad votes width", func(t *testing.T) {
		defer func() {
			if recover() == nil {
				t.Fatal("expected panic")
			}
		}()
		db.VotesInto(make([]float32, db.NumFeatures), make([]int64, 1))
	})
}

func TestDeepCheckSafetyDetectsCorruption(t *testing.T) {
	df, d := trainDeep(t)
	db, err := CompileDeep(df, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt the final layer's tables. Results live in both memory
	// layouts (flat and §5 compact); rebuilding the derived compact
	// copy propagates the corruption to whichever layout the scan uses.
	for _, bf := range db.Layers[len(db.Layers)-1] {
		for i := range bf.Table.results {
			bf.Table.results[i][0] += 999
		}
		bf.buildCompact()
	}
	if err := db.CheckSafety(df, d.X[:50]); err == nil {
		t.Fatal("corrupted cascade passed CheckSafety")
	}
}
