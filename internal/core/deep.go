package core

import (
	"fmt"

	"bolt/internal/forest"
)

// DeepBolt is a compiled deep-forest cascade (§4.6, §5 "Bolt for
// Complex Forest Structures"): each layer's forests are compiled in
// isolation — "we compress each layer in isolation, creating a lookup
// table and a dictionary" — and at inference the probability outputs of
// layer L are appended to the features of layer L+1, exactly as the
// uncompiled cascade does, so cascade predictions are preserved
// bit-for-bit.
type DeepBolt struct {
	// Layers[l][j] is the compiled engine for cascade layer l, forest j.
	Layers      [][]*Forest
	NumFeatures int
	NumClasses  int

	scratches [][]*Scratch
}

// CompileDeep compiles every member forest of the cascade with the
// same options.
func CompileDeep(df *forest.DeepForest, opts Options) (*DeepBolt, error) {
	if err := df.Validate(); err != nil {
		return nil, fmt.Errorf("core: cannot compile invalid cascade: %w", err)
	}
	db := &DeepBolt{
		Layers:      make([][]*Forest, len(df.Layers)),
		NumFeatures: df.NumFeatures,
		NumClasses:  df.NumClasses,
		scratches:   make([][]*Scratch, len(df.Layers)),
	}
	for l, layer := range df.Layers {
		db.Layers[l] = make([]*Forest, len(layer))
		db.scratches[l] = make([]*Scratch, len(layer))
		for j, f := range layer {
			bf, err := Compile(f, opts)
			if err != nil {
				return nil, fmt.Errorf("core: layer %d forest %d: %w", l, j, err)
			}
			db.Layers[l][j] = bf
			db.scratches[l][j] = bf.NewScratch()
		}
	}
	return db, nil
}

// VotesInto accumulates final-layer votes for x, mirroring
// forest.DeepForest.VotesInto step for step (including the float32
// probability normalisation) so the cascade safety property holds
// exactly.
func (db *DeepBolt) VotesInto(x []float32, votes []int64) {
	if len(x) != db.NumFeatures {
		panic(fmt.Sprintf("core: input has %d features, cascade expects %d", len(x), db.NumFeatures))
	}
	if len(votes) != db.NumClasses {
		panic(fmt.Sprintf("core: votes buffer length %d, want %d", len(votes), db.NumClasses))
	}
	cur := x
	layerVotes := make([]int64, db.NumClasses)
	for l, layer := range db.Layers {
		if l == len(db.Layers)-1 {
			for i := range votes {
				votes[i] = 0
			}
			for j, bf := range layer {
				bf.Votes(cur, db.scratches[l][j], layerVotes)
				for c := range votes {
					votes[c] += layerVotes[c]
				}
			}
			return
		}
		next := make([]float32, len(cur)+len(layer)*db.NumClasses)
		copy(next, cur)
		off := len(cur)
		for j, bf := range layer {
			bf.Votes(cur, db.scratches[l][j], layerVotes)
			total := int64(0)
			for _, v := range layerVotes {
				total += v
			}
			for c, v := range layerVotes {
				next[off+c] = float32(float64(v) / float64(total))
			}
			off += db.NumClasses
		}
		cur = next
	}
}

// Predict runs the cascade and returns the weighted-majority class.
func (db *DeepBolt) Predict(x []float32) int {
	votes := make([]int64, db.NumClasses)
	db.VotesInto(x, votes)
	return forest.Argmax(votes)
}

// CheckSafety verifies Bolt cascade output equals the original cascade
// for every input.
func (db *DeepBolt) CheckSafety(df *forest.DeepForest, X [][]float32) error {
	got := make([]int64, db.NumClasses)
	want := make([]int64, db.NumClasses)
	for i, x := range X {
		db.VotesInto(x, got)
		df.VotesInto(x, want)
		for c := range got {
			if got[c] != want[c] {
				return fmt.Errorf("core: cascade safety violation on sample %d class %d: bolt=%d forest=%d",
					i, c, got[c], want[c])
			}
		}
	}
	return nil
}
