package core

import (
	"errors"
	"fmt"

	"bolt/internal/bitpack"
	"bolt/internal/rng"
)

// LookupTable is the recombined lookup table of §4.1/§4.3/Fig. 6: every
// per-cluster table entry is hashed by (dictionary entry ID, address
// bits) into one forest-wide table. The paper requires the final table
// to be conflict-free so entries are found in bounded time; we realise
// that with cuckoo hashing — every key resides in one of two slots, so a
// lookup costs at most two branch-light probes, and the builder retries
// seeds (growing the table if necessary) until displacement succeeds.
//
// Each slot stores the full (entryID, addr) key by default, making
// false-positive detection deterministic. CompactIDs mode reduces the
// stored tag to the paper's one-byte entryID mod 256 (§5), trading
// memory for a small, measurable probability of mistaking a false
// positive for a hit; it is exposed for the layout and ablation
// experiments.
type LookupTable struct {
	slots   []slot
	results [][]int64 // deduplicated per-class weighted vote vectors
	seed1   uint64
	seed2   uint64
	mask    uint64
	compact bool
	n       int // inserted keys
}

type slot struct {
	used    bool
	entryID uint32 // full entry ID, or mod-256 tag in compact mode
	addr    uint64 // zero and unused in compact mode
	result  uint32
}

// tableEntry is one expanded (entry, address) -> votes binding produced
// by the compiler.
type tableEntry struct {
	entryID uint32
	addr    uint64
	votes   []int64
}

const (
	// maxKickChain bounds cuckoo displacement before reseeding.
	maxKickChain = 500
	// maxSeedTries bounds reseeding before doubling the table.
	maxSeedTries = 8
	// maxTableBits caps table growth (2^30 slots ≈ 24 GiB of slots is
	// beyond any sane forest; fail instead).
	maxTableBits = 30
)

// buildTable constructs a conflict-free cuckoo table over the entries.
// Initial capacity targets the given load factor (default 0.5 when 0).
func buildTable(entries []tableEntry, loadFactor float64, compact bool, seed uint64) (*LookupTable, error) {
	if len(entries) == 0 {
		return nil, errors.New("core: no table entries to build")
	}
	if loadFactor <= 0 || loadFactor > 0.9 {
		loadFactor = 0.5
	}
	bits := bitpack.CeilLog2(int(float64(len(entries))/loadFactor) + 1)
	if bits < 2 {
		bits = 2
	}
	sm := seed
	for ; bits <= maxTableBits; bits++ {
		for try := 0; try < maxSeedTries; try++ {
			s1 := rng.SplitMix64(&sm)
			s2 := rng.SplitMix64(&sm)
			t, ok := tryBuild(entries, bits, s1, s2, compact)
			if ok {
				return t, nil
			}
		}
	}
	return nil, fmt.Errorf("core: cuckoo build failed for %d entries up to 2^%d slots", len(entries), maxTableBits)
}

// tryBuild constructs the table in strict (full-key) form; compact mode
// strips the stored keys down to one-byte tags afterwards, which cannot
// change slot positions because they depend only on the hash key fixed
// at insertion.
func tryBuild(entries []tableEntry, bits int, s1, s2 uint64, compact bool) (*LookupTable, bool) {
	t := &LookupTable{
		slots: make([]slot, 1<<bits),
		seed1: s1,
		seed2: s2,
		mask:  uint64(1<<bits) - 1,
	}
	resultIdx := make(map[string]uint32)
	for _, e := range entries {
		ri, ok := resultIdx[voteKey(e.votes)]
		if !ok {
			ri = uint32(len(t.results))
			t.results = append(t.results, e.votes)
			resultIdx[voteKey(e.votes)] = ri
		}
		if !t.insert(e.entryID, e.addr, ri) {
			return nil, false
		}
	}
	t.n = len(entries)
	if compact {
		t.makeCompact()
	}
	return t, true
}

// makeCompact converts a strict table to the paper's one-byte entry-ID
// layout (§5): slots keep only entryID mod 256 and drop the address.
func (t *LookupTable) makeCompact() {
	t.compact = true
	for i := range t.slots {
		if !t.slots[i].used {
			continue
		}
		t.slots[i].entryID &= 0xff
		t.slots[i].addr = 0
	}
}

func voteKey(votes []int64) string {
	b := make([]byte, 0, len(votes)*8)
	for _, v := range votes {
		u := uint64(v)
		b = append(b, byte(u), byte(u>>8), byte(u>>16), byte(u>>24),
			byte(u>>32), byte(u>>40), byte(u>>48), byte(u>>56))
	}
	return string(b)
}

// Key packs (entryID, addr) into the 64-bit hash input shared by the
// table and the bloom filter.
func Key(entryID uint32, addr uint64) uint64 {
	return rng.Mix64(addr*0x9e3779b97f4a7c15 ^ uint64(entryID)<<1 ^ 0xa5a5a5a5)
}

func (t *LookupTable) h1(key uint64) uint64 { return rng.Mix64(key^t.seed1) & t.mask }
func (t *LookupTable) h2(key uint64) uint64 { return rng.Mix64(key^t.seed2) & t.mask }

func (t *LookupTable) storedID(entryID uint32) uint32 {
	if t.compact {
		return entryID & 0xff // the paper's one-byte mod-256 tag (§5)
	}
	return entryID
}

// insert places the key cuckoo-style, displacing residents along a
// bounded kick chain. Insertion always runs on a strict (full-key)
// table so evicted residents can recompute their keys.
func (t *LookupTable) insert(entryID uint32, addr uint64, result uint32) bool {
	key := Key(entryID, addr)
	for _, p := range [2]uint64{t.h1(key), t.h2(key)} {
		s := &t.slots[p]
		if s.used && s.entryID == entryID && s.addr == addr {
			// Duplicate (entryID, addr): the compiler must have merged
			// votes per address before building; this is a bug.
			panic(fmt.Sprintf("core: duplicate table key entry=%d addr=%#x", entryID, addr))
		}
	}
	cur := slot{used: true, entryID: entryID, addr: addr, result: result}
	pos := t.h1(key)
	for kick := 0; kick < maxKickChain; kick++ {
		if !t.slots[pos].used {
			t.slots[pos] = cur
			return true
		}
		// Evict the resident and move it to its alternate slot.
		resident := t.slots[pos]
		t.slots[pos] = cur
		cur = resident
		residentKey := Key(resident.entryID, resident.addr)
		if t.h1(residentKey) == pos {
			pos = t.h2(residentKey)
		} else {
			pos = t.h1(residentKey)
		}
	}
	return false
}

// Lookup probes both candidate slots for (entryID, addr). The boolean
// result distinguishes a verified hit from a miss or a detected false
// positive (§4.3: "a response is only counted if there is a match").
func (t *LookupTable) Lookup(entryID uint32, addr uint64) (result uint32, ok bool) {
	key := Key(entryID, addr)
	want := t.storedID(entryID)
	s := &t.slots[t.h1(key)]
	if s.used && s.entryID == want && (t.compact || s.addr == addr) {
		return s.result, true
	}
	s = &t.slots[t.h2(key)]
	if s.used && s.entryID == want && (t.compact || s.addr == addr) {
		return s.result, true
	}
	return 0, false
}

// Votes returns the deduplicated vote vector with the given index.
func (t *LookupTable) Votes(result uint32) []int64 { return t.results[result] }

// NumSlots returns the table capacity.
func (t *LookupTable) NumSlots() int { return len(t.slots) }

// NumEntries returns the number of inserted keys.
func (t *LookupTable) NumEntries() int { return t.n }

// NumResults returns the number of deduplicated result vectors.
func (t *LookupTable) NumResults() int { return len(t.results) }

// Compact reports whether the table stores one-byte entry tags.
func (t *LookupTable) Compact() bool { return t.compact }

// LoadFactor returns inserted keys / slots.
func (t *LookupTable) LoadFactor() float64 {
	return float64(t.n) / float64(len(t.slots))
}

// ForEach visits every occupied slot with its stored entry tag, address
// and vote vector (build order is not preserved; iteration is slot
// order). The layout package uses it to account storage per entry.
func (t *LookupTable) ForEach(fn func(entryID uint32, addr uint64, votes []int64)) {
	for i := range t.slots {
		s := &t.slots[i]
		if s.used {
			fn(s.entryID, s.addr, t.results[s.result])
		}
	}
}

// SlotIndices returns the two candidate slot indices for (entryID,
// addr). The perfsim engine uses them to charge the exact memory
// accesses a lookup performs.
func (t *LookupTable) SlotIndices(entryID uint32, addr uint64) (uint64, uint64) {
	key := Key(entryID, addr)
	return t.h1(key), t.h2(key)
}

// ProbesFor reports how many slots Lookup actually touches for the key:
// 1 when the first probe resolves (hit in the primary slot), else 2.
func (t *LookupTable) ProbesFor(entryID uint32, addr uint64) int {
	key := Key(entryID, addr)
	want := t.storedID(entryID)
	s := &t.slots[t.h1(key)]
	if s.used && s.entryID == want && (t.compact || s.addr == addr) {
		return 1
	}
	return 2
}
