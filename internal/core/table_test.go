package core

import (
	"testing"
	"testing/quick"

	"bolt/internal/rng"
)

func mkEntries(n int, numClasses int, seed uint64) []tableEntry {
	r := rng.New(seed)
	seen := make(map[uint64]bool, n)
	out := make([]tableEntry, 0, n)
	for len(out) < n {
		e := tableEntry{
			entryID: uint32(r.Intn(1000)),
			addr:    r.Uint64() & 0xffff,
		}
		k := Key(e.entryID, e.addr)
		if seen[k] {
			continue
		}
		seen[k] = true
		votes := make([]int64, numClasses)
		votes[r.Intn(numClasses)] = int64(r.Intn(5) + 1)
		e.votes = votes
		out = append(out, e)
	}
	return out
}

func TestTableInsertLookup(t *testing.T) {
	entries := mkEntries(500, 3, 1)
	tbl, err := buildTable(entries, 0.5, false, 2)
	if err != nil {
		t.Fatal(err)
	}
	if tbl.NumEntries() != 500 {
		t.Fatalf("NumEntries = %d, want 500", tbl.NumEntries())
	}
	for _, e := range entries {
		ri, ok := tbl.Lookup(e.entryID, e.addr)
		if !ok {
			t.Fatalf("inserted key (%d, %#x) not found", e.entryID, e.addr)
		}
		got := tbl.Votes(ri)
		for c := range got {
			if got[c] != e.votes[c] {
				t.Fatalf("votes mismatch for (%d, %#x)", e.entryID, e.addr)
			}
		}
	}
}

func TestTableMissesAreMisses(t *testing.T) {
	entries := mkEntries(200, 2, 3)
	tbl, err := buildTable(entries, 0.5, false, 4)
	if err != nil {
		t.Fatal(err)
	}
	present := make(map[uint64]bool)
	for _, e := range entries {
		present[Key(e.entryID, e.addr)] = true
	}
	r := rng.New(5)
	for i := 0; i < 10000; i++ {
		id := uint32(r.Intn(1000))
		addr := r.Uint64() & 0xfffff
		if present[Key(id, addr)] {
			continue
		}
		if _, ok := tbl.Lookup(id, addr); ok {
			t.Fatalf("strict table returned a hit for absent key (%d, %#x)", id, addr)
		}
	}
}

func TestTableLoadFactorBound(t *testing.T) {
	entries := mkEntries(1000, 2, 6)
	tbl, err := buildTable(entries, 0.5, false, 7)
	if err != nil {
		t.Fatal(err)
	}
	if lf := tbl.LoadFactor(); lf > 0.55 {
		t.Errorf("load factor %g exceeds target", lf)
	}
	if tbl.NumSlots()&(tbl.NumSlots()-1) != 0 {
		t.Errorf("slot count %d not a power of two", tbl.NumSlots())
	}
}

func TestTableResultDeduplication(t *testing.T) {
	// Ten entries sharing one vote vector must store it once.
	entries := make([]tableEntry, 10)
	for i := range entries {
		entries[i] = tableEntry{entryID: uint32(i), addr: 0, votes: []int64{1, 2}}
	}
	tbl, err := buildTable(entries, 0.5, false, 8)
	if err != nil {
		t.Fatal(err)
	}
	if tbl.NumResults() != 1 {
		t.Errorf("NumResults = %d, want 1 (dedup)", tbl.NumResults())
	}
}

func TestTableDuplicateKeyPanics(t *testing.T) {
	entries := []tableEntry{
		{entryID: 1, addr: 5, votes: []int64{1}},
		{entryID: 1, addr: 5, votes: []int64{2}},
	}
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate key should panic")
		}
	}()
	if _, err := buildTable(entries, 0.5, false, 9); err != nil {
		t.Fatal(err)
	}
}

func TestTableEmpty(t *testing.T) {
	if _, err := buildTable(nil, 0.5, false, 1); err == nil {
		t.Fatal("empty entry list accepted")
	}
}

func TestTableCompactMode(t *testing.T) {
	entries := mkEntries(300, 2, 10)
	tbl, err := buildTable(entries, 0.5, true, 11)
	if err != nil {
		t.Fatal(err)
	}
	if !tbl.Compact() {
		t.Fatal("compact flag not set")
	}
	// All inserted keys still hit (no false negatives, §5).
	for _, e := range entries {
		ri, ok := tbl.Lookup(e.entryID, e.addr)
		if !ok {
			t.Fatalf("compact table lost key (%d, %#x)", e.entryID, e.addr)
		}
		got := tbl.Votes(ri)
		for c := range got {
			if got[c] != e.votes[c] {
				t.Fatalf("compact table votes mismatch")
			}
		}
	}
	// Slots must carry only one-byte tags.
	for i := range tbl.slots {
		if tbl.slots[i].used && tbl.slots[i].entryID > 0xff {
			t.Fatal("compact slot holds a wide entry ID")
		}
	}
}

func TestTableDefaultLoadFactor(t *testing.T) {
	entries := mkEntries(100, 2, 12)
	for _, lf := range []float64{0, -1, 0.95} {
		tbl, err := buildTable(entries, lf, false, 13)
		if err != nil {
			t.Fatal(err)
		}
		if got := tbl.LoadFactor(); got > 0.55 {
			t.Errorf("loadFactor=%g produced fill %g, want default 0.5 behaviour", lf, got)
		}
	}
}

// Property: any set of unique keys round-trips through the table.
func TestTableRoundTripQuick(t *testing.T) {
	f := func(seed uint64, nRaw uint16) bool {
		n := int(nRaw%400) + 1
		entries := mkEntries(n, 2, seed)
		tbl, err := buildTable(entries, 0.5, false, seed^1)
		if err != nil {
			return false
		}
		for _, e := range entries {
			ri, ok := tbl.Lookup(e.entryID, e.addr)
			if !ok || tbl.Votes(ri)[0] != e.votes[0] || tbl.Votes(ri)[1] != e.votes[1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestKeyDistinguishes(t *testing.T) {
	if Key(1, 2) == Key(2, 1) {
		t.Error("Key collides on swapped inputs")
	}
	if Key(0, 0) == Key(0, 1) || Key(0, 0) == Key(1, 0) {
		t.Error("Key collides on near inputs")
	}
}
