package core

import (
	"bytes"
	"testing"
)

// FuzzDecodeCompiled throws arbitrary bytes at the compiled-model
// decoder: it must never panic, and any artifact it accepts must be
// usable for inference without out-of-range accesses.
func FuzzDecodeCompiled(f *testing.F) {
	fr, d := trainForest(f, 141, 6, 3)
	bf, err := Compile(fr, Options{ClusterThreshold: 4})
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if err := EncodeCompiled(&buf, bf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte{})
	f.Add(buf.Bytes()[:20])
	sample := d.X[0]

	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := DecodeCompiled(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Accepted artifacts must survive a prediction when the input
		// width matches; a panic here means the decoder admitted
		// structurally unsound tables.
		if got.NumFeatures == len(sample) {
			s := got.NewScratch()
			votes := make([]int64, got.NumClasses)
			got.Votes(sample, s, votes)
		}
	})
}
