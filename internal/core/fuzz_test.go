package core

import (
	"bytes"
	"testing"
)

// FuzzDecodeCompiled throws arbitrary bytes at the compiled-model
// decoder: it must never panic, and any artifact it accepts must be
// usable for inference without out-of-range accesses.
func FuzzDecodeCompiled(f *testing.F) {
	fr, d := trainForest(f, 141, 6, 3)
	bf, err := Compile(fr, Options{ClusterThreshold: 4})
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if err := EncodeCompiled(&buf, bf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte{})
	f.Add(buf.Bytes()[:20])
	sample := d.X[0]

	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := DecodeCompiled(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Accepted artifacts must survive a prediction when the input
		// width matches; a panic here means the decoder admitted
		// structurally unsound tables.
		if got.NumFeatures == len(sample) {
			s := got.NewScratch()
			votes := make([]int64, got.NumClasses)
			got.Votes(sample, s, votes)
		}
	})
}

// FuzzVotesBatch is the differential fuzz target for the batch kernel:
// random forest shapes, compile options, batch geometries and input
// perturbations, asserting VotesBatch is bit-exact against per-sample
// Votes — the CheckSafety discipline extended to the batch path.
func FuzzVotesBatch(f *testing.F) {
	f.Add(uint64(1), uint8(4), uint8(6), uint8(3), uint16(70), uint16(0))
	f.Add(uint64(2), uint8(1), uint8(2), uint8(1), uint16(1), uint16(64))
	f.Add(uint64(3), uint8(16), uint8(12), uint8(5), uint16(129), uint16(100))
	f.Add(uint64(4), uint8(8), uint8(3), uint8(2), uint16(64), uint16(1))

	f.Fuzz(func(t *testing.T, seed uint64, thresholdRaw, treesRaw, depthRaw uint8, nRaw, blockRaw uint16) {
		trees := int(treesRaw%12) + 2
		depth := int(depthRaw%5) + 1
		fr, d := trainForest(t, seed, trees, depth)
		opts := Options{ClusterThreshold: int(thresholdRaw%16) + 1, Seed: seed}
		if thresholdRaw%3 == 0 {
			opts.BloomBitsPerKey = -1
		}
		bf, err := Compile(fr, opts)
		if err != nil {
			t.Fatalf("compile failed: %v", err)
		}
		n := int(nRaw % 300)
		X := randomInputs(n, d.NumFeatures, seed^0xbeef)
		s := bf.NewScratch()
		s.SetBatchBlock(int(blockRaw % 512)) // 0 keeps the default
		vw := bf.VoteWidth()
		batch := make([]int64, n*vw)
		bf.VotesBatch(X, s, batch)
		row := make([]int64, vw)
		for i, x := range X {
			bf.Votes(x, s, row)
			for c := range row {
				if batch[i*vw+c] != row[c] {
					t.Fatalf("seed=%d n=%d sample %d class %d: batch=%d row=%d",
						seed, n, i, c, batch[i*vw+c], row[c])
				}
			}
		}
	})
}

// FuzzCompactDict is the differential fuzz target for the §5 compact
// layout: for random forest shapes, compile options (including
// CompactIDs mode and disabled bloom filters) and batch geometries, the
// compact batch kernel and compact row path must be bit-exact with
// their flat counterparts.
func FuzzCompactDict(f *testing.F) {
	f.Add(uint64(1), uint8(4), uint8(6), uint8(3), uint16(70), uint16(0))
	f.Add(uint64(2), uint8(1), uint8(2), uint8(1), uint16(1), uint16(64))
	f.Add(uint64(3), uint8(16), uint8(12), uint8(5), uint16(129), uint16(100))
	f.Add(uint64(5), uint8(9), uint8(7), uint8(4), uint16(200), uint16(2))

	f.Fuzz(func(t *testing.T, seed uint64, thresholdRaw, treesRaw, depthRaw uint8, nRaw, blockRaw uint16) {
		trees := int(treesRaw%12) + 2
		depth := int(depthRaw%5) + 1
		fr, d := trainForest(t, seed, trees, depth)
		opts := Options{ClusterThreshold: int(thresholdRaw%16) + 1, Seed: seed}
		if thresholdRaw%3 == 0 {
			opts.BloomBitsPerKey = -1
		}
		opts.CompactIDs = seed%2 == 0
		bf, err := Compile(fr, opts)
		if err != nil {
			t.Fatalf("compile failed: %v", err)
		}
		n := int(nRaw % 300)
		X := randomInputs(n, d.NumFeatures, seed^0xc0de)
		vw := bf.VoteWidth()
		batches := make(map[bool][]int64, 2)
		rows := make(map[bool][]int64, 2)
		for _, compact := range []bool{false, true} {
			bf.SetCompactScan(compact)
			s := bf.NewScratch()
			s.SetBatchBlock(int(blockRaw % 512)) // 0 keeps the default
			batch := make([]int64, n*vw)
			bf.VotesBatch(X, s, batch)
			batches[compact] = batch
			row := make([]int64, n*vw)
			for i, x := range X {
				bf.Votes(x, s, row[i*vw:(i+1)*vw])
			}
			rows[compact] = row
		}
		for i := 0; i < n*vw; i++ {
			want := batches[false][i]
			if rows[false][i] != want || batches[true][i] != want || rows[true][i] != want {
				t.Fatalf("seed=%d n=%d index %d: flat batch=%d flat row=%d compact batch=%d compact row=%d",
					seed, n, i, want, rows[false][i], batches[true][i], rows[true][i])
			}
		}
	})
}

// FuzzVotesBatchParallel extends the differential discipline to the
// persistent runtime: for random forest shapes, batch geometries and
// every worker count 1..8, the parallel batch kernel must be bit-exact
// against both the serial batch kernel and the per-sample row path.
func FuzzVotesBatchParallel(f *testing.F) {
	f.Add(uint64(1), uint8(4), uint8(6), uint8(3), uint16(70), uint8(2))
	f.Add(uint64(2), uint8(1), uint8(2), uint8(1), uint16(1), uint8(8))
	f.Add(uint64(3), uint8(16), uint8(12), uint8(5), uint16(129), uint8(3))
	f.Add(uint64(4), uint8(8), uint8(3), uint8(2), uint16(64), uint8(5))

	f.Fuzz(func(t *testing.T, seed uint64, thresholdRaw, treesRaw, depthRaw uint8, nRaw uint16, workersRaw uint8) {
		trees := int(treesRaw%12) + 2
		depth := int(depthRaw%5) + 1
		fr, d := trainForest(t, seed, trees, depth)
		opts := Options{ClusterThreshold: int(thresholdRaw%16) + 1, Seed: seed}
		if thresholdRaw%3 == 0 {
			opts.BloomBitsPerKey = -1
		}
		bf, err := Compile(fr, opts)
		if err != nil {
			t.Fatalf("compile failed: %v", err)
		}
		n := int(nRaw % 300)
		workers := int(workersRaw%8) + 1
		X := randomInputs(n, d.NumFeatures, seed^0xfeed)
		s := bf.NewScratch()
		vw := bf.VoteWidth()
		batch := make([]int64, n*vw)
		bf.VotesBatch(X, s, batch)
		rt := NewRuntime(bf, workers)
		defer rt.Close()
		par := make([]int64, n*vw)
		bf.VotesBatchParallel(X, rt, par)
		row := make([]int64, vw)
		for i, x := range X {
			bf.Votes(x, s, row)
			for c := range row {
				if par[i*vw+c] != batch[i*vw+c] {
					t.Fatalf("seed=%d n=%d workers=%d sample %d class %d: parallel=%d batch=%d",
						seed, n, workers, i, c, par[i*vw+c], batch[i*vw+c])
				}
				if par[i*vw+c] != row[c] {
					t.Fatalf("seed=%d n=%d workers=%d sample %d class %d: parallel=%d row=%d",
						seed, n, workers, i, c, par[i*vw+c], row[c])
				}
			}
		}
	})
}
