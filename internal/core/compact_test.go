package core

import (
	"bytes"
	"reflect"
	"testing"

	"bolt/internal/rng"
)

// The §5 compact layout invariants: identical probe results, exact
// knee-point decode, deterministic reconstruction from the unchanged
// serialised format, and a footprint that actually shrinks.

func compileSmall(t *testing.T, opts Options) *Forest {
	t.Helper()
	f, _ := trainForest(t, 61, 12, 5)
	bf, err := Compile(f, opts)
	if err != nil {
		t.Fatal(err)
	}
	return bf
}

// TestCompactTableEquivalence probes every inserted key plus a sweep of
// absent keys through both tables and requires identical outcomes, in
// strict and CompactIDs modes.
func TestCompactTableEquivalence(t *testing.T) {
	for _, compactIDs := range []bool{false, true} {
		bf := compileSmall(t, Options{CompactIDs: compactIDs})
		ct := bf.Compact.Table
		// Present keys: every occupied slot, via the flat table's view.
		bf.Table.ForEach(func(entryID uint32, addr uint64, _ []int64) {
			// In compact mode the stored tag is already mod-256; probing
			// with it is how the scan path behaves.
			fr, fok := bf.Table.Lookup(entryID, addr)
			cr, cok := ct.Lookup(entryID, addr)
			if fok != cok || (fok && fr != cr) {
				t.Fatalf("compactIDs=%v: lookup(%d,%#x) flat=(%d,%v) compact=(%d,%v)",
					compactIDs, entryID, addr, fr, fok, cr, cok)
			}
		})
		// Absent and out-of-width keys, including IDs past the tag width
		// and addresses past the packed address width.
		r := rng.New(77)
		for i := 0; i < 5000; i++ {
			id := uint32(r.Uint64())
			addr := r.Uint64() >> (r.Uint64() % 64)
			fr, fok := bf.Table.Lookup(id, addr)
			cr, cok := ct.Lookup(id, addr)
			if fok != cok || (fok && fr != cr) {
				t.Fatalf("compactIDs=%v: random lookup(%d,%#x) flat=(%d,%v) compact=(%d,%v)",
					compactIDs, id, addr, fr, fok, cr, cok)
			}
		}
	}
}

// TestCompactResultsExact decodes every result vector and requires
// exact equality with the flat vote vectors, both via DecodeInto and
// via accumulation.
func TestCompactResultsExact(t *testing.T) {
	bf := compileSmall(t, Options{})
	cr := bf.Compact.Table.Results
	vw := bf.VoteWidth()
	dec := make([]int64, vw)
	acc := make([]int64, vw)
	for ri := 0; ri < bf.Table.NumResults(); ri++ {
		want := bf.Table.Votes(uint32(ri))
		cr.DecodeInto(dec, uint32(ri))
		for i := range acc {
			acc[i] = 0
		}
		cr.AccumulateInto(acc, uint32(ri))
		for c := 0; c < vw; c++ {
			if dec[c] != want[c] || acc[c] != want[c] {
				t.Fatalf("result %d class %d: decode=%d acc=%d want=%d", ri, c, dec[c], acc[c], want[c])
			}
		}
	}
}

// TestCompactResultsKneeEscape exercises the escape side table with a
// synthetic distribution: many small values and a >1% tail of large
// positive and negative outliers, including values that collide with
// the sentinel code.
func TestCompactResultsKneeEscape(t *testing.T) {
	var results [][]int64
	for i := 0; i < 400; i++ {
		results = append(results, []int64{int64(i % 7), -int64(i % 5), 3})
	}
	// Tail: huge magnitudes of both signs, plus values whose zigzag code
	// equals plausible sentinels.
	results = append(results,
		[]int64{1 << 40, -(1 << 40), 0},
		[]int64{-1, 7, 1 << 62},
		[]int64{127, -128, 255}, // around one-byte sentinel codes
	)
	cr := newCompactResults(results, 3)
	if cr.Width() >= 40 {
		t.Fatalf("knee width %d did not stay near the 99th percentile", cr.Width())
	}
	if cr.NumEscapes() == 0 {
		t.Fatal("no escapes recorded for an outlier tail")
	}
	dec := make([]int64, 3)
	for ri, want := range results {
		cr.DecodeInto(dec, uint32(ri))
		for c := range want {
			if dec[c] != want[c] {
				t.Fatalf("result %d class %d: decode=%d want=%d", ri, c, dec[c], want[c])
			}
		}
	}
}

// TestCompactRoundTrip proves DecodeCompiled rebuilds an identical
// CompactDict from the unchanged serialised format: same packed bytes,
// same layout selection.
func TestCompactRoundTrip(t *testing.T) {
	for _, opts := range []Options{{}, {CompactIDs: true}, {ClusterThreshold: 2, BloomBitsPerKey: -1}} {
		bf := compileSmall(t, opts)
		var buf bytes.Buffer
		if err := EncodeCompiled(&buf, bf); err != nil {
			t.Fatal(err)
		}
		got, err := DecodeCompiled(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got.Compact, bf.Compact) {
			t.Fatalf("opts %+v: decoded CompactDict differs from compiled one", opts)
		}
		if got.CompactScan() != bf.CompactScan() {
			t.Fatalf("opts %+v: layout selection diverged: decoded=%v compiled=%v",
				opts, got.CompactScan(), bf.CompactScan())
		}
	}
}

// TestCompactShrinks pins the point of the layout: the compact form
// must be smaller than the flat form on a realistic forest, and the
// size heuristic must therefore select it.
func TestCompactShrinks(t *testing.T) {
	bf := compileSmall(t, Options{})
	fp := bf.Footprint()
	if fp.CompactBytes() >= fp.FlatBytes() {
		t.Fatalf("compact %d B not smaller than flat %d B", fp.CompactBytes(), fp.FlatBytes())
	}
	if !bf.CompactScan() {
		t.Fatal("size heuristic did not select the compact layout")
	}
	if fp.Layout != LayoutCompact {
		t.Fatalf("footprint layout %q, want %q", fp.Layout, LayoutCompact)
	}
	if fp.DictBytesPerEntry(true) >= fp.DictBytesPerEntry(false) {
		t.Fatalf("compact dict bytes/entry %.1f not below flat %.1f",
			fp.DictBytesPerEntry(true), fp.DictBytesPerEntry(false))
	}
	if fp.TableBytesPerSlot(true) >= fp.TableBytesPerSlot(false) {
		t.Fatalf("compact table bytes/slot %.2f not below flat %.2f",
			fp.TableBytesPerSlot(true), fp.TableBytesPerSlot(false))
	}
}

// TestSetCompactScan pins the override used by benches and ablations:
// both layouts stay available and bit-exact.
func TestSetCompactScan(t *testing.T) {
	bf := compileSmall(t, Options{})
	X := randomInputs(200, 8, 99)
	vw := bf.VoteWidth()
	run := func(compact bool) []int64 {
		bf.SetCompactScan(compact)
		if bf.CompactScan() != compact {
			t.Fatalf("SetCompactScan(%v) not applied", compact)
		}
		s := bf.NewScratch()
		votes := make([]int64, len(X)*vw)
		bf.VotesBatch(X, s, votes)
		return votes
	}
	flat := run(false)
	compact := run(true)
	for i := range flat {
		if flat[i] != compact[i] {
			t.Fatalf("layouts diverge at %d: flat=%d compact=%d", i, flat[i], compact[i])
		}
	}
}

// TestBatchBlockForLayout pins the block-sizing contract: results stay
// multiples of 64 in [64,4096], and a smaller scan footprint never
// shrinks the block.
func TestBatchBlockForLayout(t *testing.T) {
	for _, cache := range []int{0, 4 << 10, 192 << 10, 8 << 20} {
		for _, scan := range []int{0, 1 << 10, 64 << 10, 10 << 20} {
			b := BatchBlockForLayout(cache, scan, 4, 10)
			if b < minBatchBlock || b > maxBatchBlock || b%64 != 0 {
				t.Fatalf("BatchBlockForLayout(%d,%d)=%d out of contract", cache, scan, b)
			}
		}
		small := BatchBlockForLayout(cache, 1<<10, 4, 10)
		large := BatchBlockForLayout(cache, 1<<20, 4, 10)
		if small < large {
			t.Fatalf("cache %d: smaller footprint produced smaller block (%d < %d)", cache, small, large)
		}
	}
}
