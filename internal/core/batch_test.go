package core

import (
	"bytes"
	"testing"

	"bolt/internal/dataset"
	"bolt/internal/forest"
	"bolt/internal/tree"
)

// TestVotesBatchMatchesRow is the batch kernel's headline invariant:
// for every batch size — empty, single row, one bit short of a chunk,
// exactly a chunk, chunk+1, several chunks, and across block
// boundaries — VotesBatch is bit-exact with per-row Votes.
func TestVotesBatchMatchesRow(t *testing.T) {
	f, d := trainForest(t, 201, 12, 5)
	bf, err := Compile(f, Options{ClusterThreshold: 6})
	if err != nil {
		t.Fatal(err)
	}
	all := append(append([][]float32{}, d.X...), randomInputs(300, d.NumFeatures, 202)...)
	s := bf.NewScratch()
	s.SetBatchBlock(128) // small block so multi-block paths are exercised
	vw := bf.VoteWidth()
	row := make([]int64, vw)
	for _, n := range []int{0, 1, 63, 64, 65, 127, 128, 129, 300, len(all)} {
		X := all[:n]
		batch := make([]int64, n*vw)
		bf.VotesBatch(X, s, batch)
		for i, x := range X {
			bf.Votes(x, s, row)
			for c := range row {
				if batch[i*vw+c] != row[c] {
					t.Fatalf("n=%d sample %d class %d: batch=%d row=%d", n, i, c, batch[i*vw+c], row[c])
				}
			}
		}
	}
}

// Bloom-filtered and filter-free compilations must agree through the
// batch path too (the filter only ever skips table probes that would
// miss anyway).
func TestVotesBatchAcrossOptions(t *testing.T) {
	f, d := trainForest(t, 203, 8, 4)
	X := append(append([][]float32{}, d.X[:150]...), randomInputs(150, d.NumFeatures, 204)...)
	for _, opt := range []Options{
		{ClusterThreshold: 1},
		{ClusterThreshold: 8},
		{ClusterThreshold: 8, BloomBitsPerKey: -1},
		{ClusterThreshold: 16, TableLoadFactor: 0.25},
	} {
		bf, err := Compile(f, opt)
		if err != nil {
			t.Fatalf("Compile(%+v): %v", opt, err)
		}
		if err := bf.CheckSafety(f, X); err != nil {
			t.Errorf("options %+v: %v", opt, err)
		}
	}
}

func TestPredictBatchIntoMatchesPredict(t *testing.T) {
	f, d := trainForest(t, 205, 10, 4)
	bf, err := Compile(f, Options{ClusterThreshold: 4})
	if err != nil {
		t.Fatal(err)
	}
	X := append(append([][]float32{}, d.X...), randomInputs(100, d.NumFeatures, 206)...)
	s := bf.NewScratch()
	out := make([]int, len(X))
	bf.PredictBatchInto(X, s, out)
	ref := bf.NewScratch()
	for i, x := range X {
		if want := bf.Predict(x, ref); out[i] != want {
			t.Fatalf("sample %d: batch predicted %d, row path %d", i, out[i], want)
		}
	}
	// The allocating wrapper takes the same kernel.
	for i, got := range bf.PredictBatch(X[:97]) {
		if got != out[i] {
			t.Fatalf("PredictBatch sample %d: got %d want %d", i, got, out[i])
		}
	}
}

func TestVotesBatchRegression(t *testing.T) {
	rf, gbt, d := regressionForests(t)
	X := append(append([][]float32{}, d.X[:130]...), randomInputs(130, d.NumFeatures, 207)...)
	for name, f := range map[string]*forest.Forest{"bagged": rf, "boosted": gbt} {
		bf, err := Compile(f, Options{ClusterThreshold: 4, Seed: 208})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		s := bf.NewScratch()
		batch := make([]int64, len(X))
		bf.VotesBatch(X, s, batch)
		row := make([]int64, 1)
		for i, x := range X {
			bf.Votes(x, s, row)
			if batch[i] != row[0] {
				t.Fatalf("%s sample %d: batch=%d row=%d", name, i, batch[i], row[0])
			}
		}
	}
}

func TestPredictBatchIntoPanicsOnRegression(t *testing.T) {
	_, gbt, d := regressionForests(t)
	bf, err := Compile(gbt, Options{ClusterThreshold: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	bf.PredictBatchInto(d.X[:2], bf.NewScratch(), make([]int, 2))
}

// TestFlatDictMirrorsDictionary checks the SoA flattening is faithful:
// same IDs, masks, values, uncommon lists, and a packed common list
// consistent with the mask/value words.
func TestFlatDictMirrorsDictionary(t *testing.T) {
	f, _ := trainForest(t, 209, 10, 5)
	bf, err := Compile(f, Options{ClusterThreshold: 8})
	if err != nil {
		t.Fatal(err)
	}
	d, fd := bf.Dict, bf.Flat
	if fd.Len() != len(d.Entries) {
		t.Fatalf("flat has %d entries, dict %d", fd.Len(), len(d.Entries))
	}
	if fd.Words() != d.Words() {
		t.Fatalf("flat words %d, dict words %d", fd.Words(), d.Words())
	}
	for i := range d.Entries {
		e := &d.Entries[i]
		if fd.ID(i) != e.ID {
			t.Fatalf("entry %d: flat ID %d, dict ID %d", i, fd.ID(i), e.ID)
		}
		mask, vals := fd.MaskVals(i)
		for w := range e.CommonMask {
			if mask[w] != e.CommonMask[w] || vals[w] != e.CommonVals[w] {
				t.Fatalf("entry %d word %d: flat (%x,%x) dict (%x,%x)",
					i, w, mask[w], vals[w], e.CommonMask[w], e.CommonVals[w])
			}
		}
		unc := fd.Uncommon(i)
		if len(unc) != len(e.Uncommon) {
			t.Fatalf("entry %d: flat %d uncommon, dict %d", i, len(unc), len(e.Uncommon))
		}
		for j := range unc {
			if unc[j] != e.Uncommon[j] {
				t.Fatalf("entry %d uncommon %d: flat %d, dict %d", i, j, unc[j], e.Uncommon[j])
			}
		}
		common := fd.Common(i)
		if len(common) != e.NumCommon {
			t.Fatalf("entry %d: flat %d common pairs, dict %d", i, len(common), e.NumCommon)
		}
		for _, packed := range common {
			pred := packed >> 1
			w, b := pred/64, uint(pred%64)
			if e.CommonMask[w]&(1<<b) == 0 {
				t.Fatalf("entry %d: packed predicate %d not in mask", i, pred)
			}
			wantVal := e.CommonVals[w]&(1<<b) != 0
			if (packed&1 == 1) != wantVal {
				t.Fatalf("entry %d predicate %d: packed value %v, dict %v", i, pred, packed&1 == 1, wantVal)
			}
		}
	}
}

func TestBatchBlockFor(t *testing.T) {
	for _, tc := range []struct {
		cache, words, vw int
		want             int
	}{
		{0, 1, 3, 64},            // floor
		{1 << 30, 1, 3, 4096},    // ceiling
		{192 << 10, 1, 3, 4096},  // tiny rows: capped
		{192 << 10, 64, 10, 128}, // 1104 B/sample → 178 → rounded to 128
	} {
		if got := BatchBlockFor(tc.cache, tc.words, tc.vw); got != tc.want {
			t.Errorf("BatchBlockFor(%d,%d,%d) = %d, want %d", tc.cache, tc.words, tc.vw, got, tc.want)
		}
		got := BatchBlockFor(tc.cache, tc.words, tc.vw)
		if got%64 != 0 || got < 64 || got > 4096 {
			t.Errorf("BatchBlockFor(%d,%d,%d) = %d out of contract", tc.cache, tc.words, tc.vw, got)
		}
	}
}

func TestSetBatchBlock(t *testing.T) {
	f, d := trainForest(t, 210, 6, 3)
	bf, err := Compile(f, Options{ClusterThreshold: 4})
	if err != nil {
		t.Fatal(err)
	}
	s := bf.NewScratch()
	s.SetBatchBlock(100) // rounds up to 128
	out := make([]int, len(d.X))
	bf.PredictBatchInto(d.X, s, out)
	ref := bf.PredictBatch(d.X)
	for i := range out {
		if out[i] != ref[i] {
			t.Fatalf("sample %d: custom block predicted %d, default %d", i, out[i], ref[i])
		}
	}
	s.SetBatchBlock(0) // back to default, still correct
	bf.PredictBatchInto(d.X, s, out)
	for i := range out {
		if out[i] != ref[i] {
			t.Fatalf("sample %d after reset: got %d want %d", i, out[i], ref[i])
		}
	}
}

// SalienceInto must agree with the allocating wrapper and count exactly
// the features of matched entries.
func TestSalienceIntoMatchesSalience(t *testing.T) {
	f, d := trainForest(t, 211, 10, 4)
	bf, err := Compile(f, Options{ClusterThreshold: 8})
	if err != nil {
		t.Fatal(err)
	}
	s := bf.NewScratch()
	counts := make([]int, bf.NumFeatures)
	sawNonZero := false
	for _, x := range d.X[:50] {
		want := bf.Salience(x, s)
		bf.SalienceInto(x, s, counts)
		for j := range counts {
			if counts[j] != want[j] {
				t.Fatalf("feature %d: SalienceInto %d, Salience %d", j, counts[j], want[j])
			}
			if counts[j] > 0 {
				sawNonZero = true
			}
		}
	}
	if !sawNonZero {
		t.Fatal("salience counts all zero across 50 samples — scan is not matching")
	}
}

func TestSafetyCatchesBatchDivergence(t *testing.T) {
	// CheckSafety must now also police the batch path: corrupt the flat
	// dictionary (leaving the row path intact) and the check must fail.
	f, d := trainForest(t, 212, 8, 4)
	bf, err := Compile(f, Options{ClusterThreshold: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := bf.CheckSafety(f, d.X[:64]); err != nil {
		t.Fatal(err)
	}
	if len(bf.Flat.common) == 0 {
		t.Skip("no common pairs to corrupt")
	}
	old := bf.Flat.common[0]
	bf.Flat.common[0] ^= 1 // flip one required predicate value
	defer func() { bf.Flat.common[0] = old }()
	if err := bf.CheckSafety(f, d.X[:64]); err == nil {
		t.Fatal("CheckSafety accepted a diverging batch kernel")
	}
}

// The degenerate single-leaf forest (no predicates at all) must survive
// the batch path: stale row words may be transposed but no predicate
// column is ever read.
func TestVotesBatchSingleLeafForest(t *testing.T) {
	d := &dataset.Dataset{Name: "pure", NumFeatures: 2, NumClasses: 2,
		X: [][]float32{{1, 2}, {3, 4}}, Y: []int{1, 1}}
	f := forest.Train(d, forest.Config{NumTrees: 3, Tree: tree.Config{MaxDepth: 4}, Seed: 213})
	bf, err := Compile(f, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if bf.Kind != tree.Classification {
		t.Fatal("expected classification forest")
	}
	X := randomInputs(70, 2, 214)
	if err := bf.CheckSafety(f, X); err != nil {
		t.Fatal(err)
	}
	out := make([]int, len(X))
	bf.PredictBatchInto(X, bf.NewScratch(), out)
	for i, got := range out {
		if got != 1 {
			t.Fatalf("sample %d: got class %d, want 1", i, got)
		}
	}
}

// Decoded artifacts must carry a working flat dictionary too.
func TestDecodeCompiledBuildsFlatDict(t *testing.T) {
	f, d := trainForest(t, 215, 8, 4)
	bf, err := Compile(f, Options{ClusterThreshold: 6})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := EncodeCompiled(&buf, bf); err != nil {
		t.Fatal(err)
	}
	rt, err := DecodeCompiled(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if rt.Flat == nil {
		t.Fatal("DecodeCompiled left Flat nil")
	}
	if err := rt.CheckSafety(f, d.X[:100]); err != nil {
		t.Fatal(err)
	}
}
