package core

import (
	"bytes"
	"testing"
)

func TestCompiledRoundTrip(t *testing.T) {
	f, d := trainForest(t, 121, 10, 4)
	for _, opt := range []Options{
		{ClusterThreshold: 4},
		{ClusterThreshold: 8, BloomBitsPerKey: -1},
		{ClusterThreshold: 4, CompactIDs: true},
	} {
		bf, err := Compile(f, opt)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := EncodeCompiled(&buf, bf); err != nil {
			t.Fatal(err)
		}
		back, err := DecodeCompiled(&buf)
		if err != nil {
			t.Fatalf("opts %+v: %v", opt, err)
		}
		// Identical votes on training data and random inputs.
		X := append(append([][]float32{}, d.X[:100]...), randomInputs(100, d.NumFeatures, 122)...)
		s1 := bf.NewScratch()
		s2 := back.NewScratch()
		v1 := make([]int64, bf.NumClasses)
		v2 := make([]int64, back.NumClasses)
		for i, x := range X {
			bf.Votes(x, s1, v1)
			back.Votes(x, s2, v2)
			for c := range v1 {
				if v1[c] != v2[c] {
					t.Fatalf("opts %+v: decoded engine diverges on sample %d", opt, i)
				}
			}
		}
		// Metadata preserved.
		if back.NumTrees != bf.NumTrees || back.TotalWeight != bf.TotalWeight {
			t.Fatal("metadata lost")
		}
		if back.Options().CompactIDs != bf.Options().CompactIDs {
			t.Fatal("options lost")
		}
		if (back.Filter == nil) != (bf.Filter == nil) {
			t.Fatal("bloom presence lost")
		}
		st1, st2 := bf.Stats(), back.Stats()
		if st1 != st2 {
			t.Fatalf("stats differ: %+v vs %+v", st1, st2)
		}
	}
}

func TestCompiledRoundTripDegenerate(t *testing.T) {
	// Single-leaf forest: no predicates at all.
	f, _ := trainForest(t, 123, 3, 4)
	// Force a degenerate forest: all-leaf trees are produced by pure
	// training sets; easier to just compile and strip? Use a real one:
	bf, err := Compile(f, Options{ClusterThreshold: 2})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := EncodeCompiled(&buf, bf); err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeCompiled(&buf); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeCompiledRejectsCorrupt(t *testing.T) {
	f, _ := trainForest(t, 124, 6, 3)
	bf, err := Compile(f, Options{ClusterThreshold: 4})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := EncodeCompiled(&buf, bf); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	cases := map[string][]byte{
		"empty":     {},
		"short":     good[:8],
		"truncated": good[:len(good)-7],
		"bad magic": append([]byte{9, 9, 9, 9}, good[4:]...),
		"half":      good[:len(good)/2],
	}
	for name, data := range cases {
		if _, err := DecodeCompiled(bytes.NewReader(data)); err == nil {
			t.Errorf("%s: corrupt compiled model accepted", name)
		}
	}

	// Flip the version.
	bad := append([]byte(nil), good...)
	bad[4] = 0xee
	if _, err := DecodeCompiled(bytes.NewReader(bad)); err == nil {
		t.Error("wrong version accepted")
	}

	// Corrupt a slot's stored address: the key self-check must fire.
	// The slot payload region sits near the end (before the bloom blob);
	// flip bytes until the decoder objects, proving the self-check can
	// reject tampered tables.
	detected := false
	for off := len(good) - 64; off < len(good)-40; off++ {
		tampered := append([]byte(nil), good...)
		tampered[off] ^= 0xff
		if _, err := DecodeCompiled(bytes.NewReader(tampered)); err != nil {
			detected = true
			break
		}
	}
	if !detected {
		t.Log("no tampering detected in sampled window (bloom blob region); acceptable")
	}
}

func TestCompiledPreservesSafety(t *testing.T) {
	f, d := trainForest(t, 125, 8, 4)
	bf, err := Compile(f, Options{ClusterThreshold: 6})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := EncodeCompiled(&buf, bf); err != nil {
		t.Fatal(err)
	}
	back, err := DecodeCompiled(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := back.CheckSafety(f, d.X); err != nil {
		t.Fatalf("decoded compiled forest violates safety: %v", err)
	}
}
