package core

import (
	"fmt"
	"sort"

	"bolt/internal/bitpack"
	"bolt/internal/forest"
	"bolt/internal/tree"
)

// Tiered early-exit inference (DiNo/RanBu-style staging over Bolt's
// lookup-table kernel). Compile orders the dictionary so the first
// TierEntries entries carry every path of the forest's first TierTrees
// trees; the tiered batch kernel scans that prefix, measures each
// sample's leading margin over the runner-up class, and resumes over
// the remaining entries only for samples whose margin is inconclusive.
// Because per-class votes are additive across trees, escalation resumes
// accumulation into the same vote rows — the escalated path does zero
// duplicate work and its votes are bit-exact with the monolithic
// kernel.
//
// Exit rules:
//
//   - exact mode (margin < 0): a sample is decided when its tier-0 lead
//     strictly exceeds TierWeight, the summed weight of the tier-1
//     trees. Each classification tree adds its whole weight to exactly
//     one class, so tier 1 can raise any class by at most TierWeight:
//     for the leader b and any challenger c,
//     final(c) <= votes(c) + TierWeight < votes(b) <= final(b),
//     so the argmax cannot flip — and the strict inequality also
//     preserves the lowest-index tie-break. Zero accuracy change by
//     construction (CheckSafety and FuzzTieredDifferential enforce it).
//   - calibrated mode (margin >= 0): the caller supplies a smaller
//     threshold, typically fit by CalibrateTier on a holdout to a
//     maximum accuracy-loss budget, trading bounded divergence for a
//     lower escalation rate.

// TierStats counts the outcome of tiered calls: samples answered by the
// tier-0 prefix alone versus samples escalated to the full dictionary.
type TierStats struct {
	Tier0Answered int64
	Escalated     int64
}

// Total returns the number of samples the stats cover.
func (ts TierStats) Total() int64 { return ts.Tier0Answered + ts.Escalated }

// EscalationRate returns the escalated fraction in [0, 1] (0 when
// empty).
func (ts TierStats) EscalationRate() float64 {
	if t := ts.Total(); t > 0 {
		return float64(ts.Escalated) / float64(t)
	}
	return 0
}

// Tiered reports whether the tiered kernels have a usable boundary:
// a non-trivial tier-0 entry prefix and at least two vote accumulators
// to take a margin over. Untier'd (or regression) forests make every
// tiered call degrade to the monolithic kernel with all samples
// counted as escalated.
func (bf *Forest) Tiered() bool {
	return bf.TierEntries > 0 && bf.TierEntries < bf.Flat.Len() &&
		bf.Kind != tree.Regression && bf.VoteWidth() >= 2
}

// ExactTierMargin returns the margin that makes tiering lossless: the
// summed weight of the tier-1 trees.
func (bf *Forest) ExactTierMargin() int64 { return bf.TierWeight }

// SetTierMargin stores a calibrated margin threshold on the forest
// (serialized with the model; -1 clears it). It does not change kernel
// behaviour by itself — callers resolve their margin via the stored
// value or pass one explicitly. Not safe concurrently with encoding.
func (bf *Forest) SetTierMargin(m int64) {
	if m < 0 {
		m = -1
	}
	bf.TierMargin = m
}

// effectiveTierMargin resolves a caller margin: m >= 0 is used as-is
// (calibrated mode); negative selects exact mode.
func (bf *Forest) effectiveTierMargin(m int64) int64 {
	if m >= 0 {
		return m
	}
	return bf.TierWeight
}

// ensureTiered grows the survivor compaction buffers for block size b.
// Cold: runs once per batch, before the hotpath kernels.
func (s *Scratch) ensureTiered(b, w, vw int) {
	if len(s.survRows) < b*w {
		s.survRows = make([]uint64, b*w)
		s.survCols = make([]uint64, b*w)
	}
	if len(s.survVotes) < b*vw {
		s.survVotes = make([]int64, b*vw)
	}
	if len(s.survIdx) < b {
		s.survIdx = make([]int32, b)
	}
}

// tierLead returns the leading margin of a vote row: best minus
// runner-up. Requires len(votes) >= 2 (guaranteed by Tiered).
//
//bolt:hotpath
func tierLead(votes []int64) int64 {
	best, second := votes[0], votes[1]
	if second > best {
		best, second = second, best
	}
	for _, v := range votes[2:] {
		if v > best {
			second = best
			best = v
		} else if v > second {
			second = v
		}
	}
	return best - second
}

// VotesBatchTiered runs the staged batch kernel for every row of X into
// votes (len(X) × VoteWidth, zeroed first). Decided samples keep their
// tier-0 partial votes — in exact mode (margin < 0) their argmax
// provably equals the monolithic kernel's; escalated samples' votes are
// bit-exact with VotesBatch. ts (may be nil) accumulates the outcome
// counts. Zero allocations once the scratch has grown.
//
//bolt:hotpath
func (bf *Forest) VotesBatchTiered(X [][]float32, s *Scratch, votes []int64, margin int64, ts *TierStats) {
	vw := bf.VoteWidth()
	if len(votes) != len(X)*vw {
		panicBatchVotesLen(len(votes), len(X), vw)
	}
	var local TierStats
	if ts == nil {
		ts = &local
	}
	if !bf.Tiered() {
		bf.VotesBatch(X, s, votes)
		ts.Escalated += int64(len(X))
		return
	}
	margin = bf.effectiveTierMargin(margin)
	b := s.ensureBatch(bf)
	s.ensureTiered(b, bf.Flat.Words(), vw)
	for start := 0; start < len(X); start += b {
		end := start + b
		if end > len(X) {
			end = len(X)
		}
		bf.votesBlockTiered(X[start:end], s, votes[start*vw:end*vw], margin, ts)
	}
}

// votesBlockTiered is the per-block staged kernel: tier-0 scan, margin
// test, survivor compaction, tier-1 resume, scatter-back.
//
//bolt:hotpath
func (bf *Forest) votesBlockTiered(X [][]float32, s *Scratch, votes []int64, margin int64, ts *TierStats) {
	n := len(X)
	chunks := bf.encodeBlock(X, s, votes)
	boundary, total := bf.TierEntries, bf.Flat.Len()
	vw := bf.VoteWidth()
	if bf.scanCompact {
		bf.scanEntriesCompact(s.cols, votes, s, n, chunks, 0, boundary)
	} else {
		bf.scanEntriesFlat(s.cols, votes, n, chunks, 0, boundary)
	}
	// Partition the block: a sample whose lead strictly exceeds the
	// margin is decided; the rest survive to tier 1.
	ns := 0
	for i := 0; i < n; i++ {
		if tierLead(votes[i*vw:(i+1)*vw]) > margin {
			continue
		}
		s.survIdx[ns] = int32(i)
		ns++
	}
	ts.Tier0Answered += int64(n - ns)
	ts.Escalated += int64(ns)
	if ns == 0 {
		return
	}
	if ns == n {
		// Nothing decided: resume over the block's columns in place.
		if bf.scanCompact {
			bf.scanEntriesCompact(s.cols, votes, s, n, chunks, boundary, total)
		} else {
			bf.scanEntriesFlat(s.cols, votes, n, chunks, boundary, total)
		}
		return
	}
	// Compact the survivors: gather their sample-major rows and partial
	// votes densely, re-transpose to predicate-major columns (the same
	// 64×64 bitpack machinery as encodeBlock), resume accumulation over
	// the tier-1 range, and scatter the finished rows back. Rows past
	// ns in the final chunk hold stale bits; the scan's tail mask keeps
	// them out of every match.
	w := bf.Flat.Words()
	cw := w * 64
	for i := 0; i < ns; i++ {
		si := int(s.survIdx[i])
		copy(s.survRows[i*w:(i+1)*w], s.rowBits[si*w:(si+1)*w])
		copy(s.survVotes[i*vw:(i+1)*vw], votes[si*vw:(si+1)*vw])
	}
	schunks := (ns + 63) / 64
	for c := 0; c < schunks; c++ {
		bitpack.TransposeBlock(s.survRows[c*cw:], s.survCols[c*cw:], w)
	}
	if bf.scanCompact {
		bf.scanEntriesCompact(s.survCols, s.survVotes[:ns*vw], s, ns, schunks, boundary, total)
	} else {
		bf.scanEntriesFlat(s.survCols, s.survVotes[:ns*vw], ns, schunks, boundary, total)
	}
	for i := 0; i < ns; i++ {
		si := int(s.survIdx[i])
		copy(votes[si*vw:(si+1)*vw], s.survVotes[i*vw:(i+1)*vw])
	}
}

// PredictBatchTieredInto classifies every row of X into out (length
// len(X)) with the staged kernel. In exact mode (margin < 0) the labels
// are identical to PredictBatchInto's; with a calibrated margin they
// may diverge within the calibration budget. ts (may be nil)
// accumulates outcome counts. Zero allocations once the scratch has
// grown.
//
//bolt:hotpath
func (bf *Forest) PredictBatchTieredInto(X [][]float32, s *Scratch, margin int64, out []int, ts *TierStats) {
	if bf.Kind == tree.Regression {
		panic("core: PredictBatchTieredInto on a regression forest (use VotesBatch)")
	}
	if len(out) != len(X) {
		panicBufLen("out", len(out), len(X))
	}
	var local TierStats
	if ts == nil {
		ts = &local
	}
	if !bf.Tiered() {
		bf.PredictBatchInto(X, s, out)
		ts.Escalated += int64(len(X))
		return
	}
	margin = bf.effectiveTierMargin(margin)
	b := s.ensureBatch(bf)
	vw := bf.VoteWidth()
	s.ensureBatchVotes(b * vw)
	s.ensureTiered(b, bf.Flat.Words(), vw)
	for start := 0; start < len(X); start += b {
		end := start + b
		if end > len(X) {
			end = len(X)
		}
		n := end - start
		bv := s.batchVotes[:n*vw]
		bf.votesBlockTiered(X[start:end], s, bv, margin, ts)
		for i := 0; i < n; i++ {
			out[start+i] = forest.Argmax(bv[i*vw : (i+1)*vw])
		}
	}
}

// votesBatchTier0 accumulates only the tier-0 entry range for every row
// of X — the calibration probe's view of what tier 0 alone would answer.
func (bf *Forest) votesBatchTier0(X [][]float32, s *Scratch, votes []int64) {
	vw := bf.VoteWidth()
	if len(votes) != len(X)*vw {
		panicBatchVotesLen(len(votes), len(X), vw)
	}
	b := s.ensureBatch(bf)
	for start := 0; start < len(X); start += b {
		end := start + b
		if end > len(X) {
			end = len(X)
		}
		n := end - start
		v := votes[start*vw : end*vw]
		chunks := bf.encodeBlock(X[start:end], s, v)
		if bf.scanCompact {
			bf.scanEntriesCompact(s.cols, v, s, n, chunks, 0, bf.TierEntries)
		} else {
			bf.scanEntriesFlat(s.cols, v, n, chunks, 0, bf.TierEntries)
		}
	}
}

// CalibrateTier fits the smallest margin threshold whose tiered
// predictions diverge from the monolithic kernel on at most
// floor(maxLoss × len(X)) of the holdout samples X. The returned
// threshold is monotone in maxLoss: a sample diverges at threshold t
// exactly when its tier-0 lead exceeds t and its tier-0 argmax differs
// from the full argmax, so raising t only removes divergences.
// maxLoss 0 returns a threshold with zero divergence on the holdout
// (still cheaper than exact mode when the holdout's confident samples
// are honest); the result is clamped to [0, ExactTierMargin].
func CalibrateTier(bf *Forest, X [][]float32, maxLoss float64) (int64, error) {
	if !bf.Tiered() {
		return 0, fmt.Errorf("core: CalibrateTier on an untier'd forest (compile with Options.TierTrees)")
	}
	if len(X) == 0 {
		return 0, fmt.Errorf("core: CalibrateTier needs a non-empty holdout")
	}
	if maxLoss < 0 || maxLoss > 1 {
		return 0, fmt.Errorf("core: CalibrateTier loss budget %v outside [0,1]", maxLoss)
	}
	s := bf.NewScratch()
	vw := bf.VoteWidth()
	full := make([]int64, len(X)*vw)
	bf.VotesBatch(X, s, full)
	t0 := make([]int64, len(X)*vw)
	bf.votesBatchTier0(X, s, t0)
	// A sample can diverge only if deciding it at tier 0 flips the
	// label; collect the tier-0 leads of exactly those samples.
	var leads []int64
	for i := range X {
		row := t0[i*vw : (i+1)*vw]
		if forest.Argmax(row) != forest.Argmax(full[i*vw:(i+1)*vw]) {
			leads = append(leads, tierLead(row))
		}
	}
	budget := int(maxLoss * float64(len(X)))
	if len(leads) <= budget {
		return 0, nil
	}
	// Keep the budget's worth of largest-lead mismatches decided (they
	// are the budgeted loss); every other mismatch must escalate, so
	// the threshold is the largest lead among those — decided requires
	// lead > threshold, so lead == threshold escalates.
	sort.Slice(leads, func(i, j int) bool { return leads[i] < leads[j] })
	thr := leads[len(leads)-budget-1]
	if thr > bf.TierWeight {
		thr = bf.TierWeight
	}
	if thr < 0 {
		thr = 0
	}
	return thr, nil
}
