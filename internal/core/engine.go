package core

import (
	"fmt"
	"math/bits"

	"bolt/internal/bitpack"
	"bolt/internal/forest"
	"bolt/internal/tree"
)

// Scratch holds the per-goroutine reusable buffers of the inference hot
// path, so steady-state inference performs zero allocations.
type Scratch struct {
	bits  *bitpack.Bitset
	votes []int64
}

// Votes runs Bolt inference for x, accumulating per-class weighted
// votes into votes (length NumClasses, zeroed first). The flow is
// Fig. 7's processing-engine loop:
//
//  1. encode the input once: evaluate every predicate into a bitset;
//  2. for each dictionary entry, test the common-feature mask with
//     word-wide AND/compare (no per-node branching);
//  3. on a mask match, gather the uncommon bits into the table address,
//     consult the bloom filter, and — if it may be present — probe the
//     recombined table, which verifies the (entryID, address) key to
//     reject false positives (§4.3);
//  4. a verified hit contributes its pre-summed vote vector.
func (bf *Forest) Votes(x []float32, s *Scratch, votes []int64) {
	if len(x) != bf.NumFeatures {
		panic(fmt.Sprintf("core: input has %d features, forest expects %d", len(x), bf.NumFeatures))
	}
	if len(votes) != bf.VoteWidth() {
		panic(fmt.Sprintf("core: votes buffer length %d, want %d", len(votes), bf.VoteWidth()))
	}
	for i := range votes {
		votes[i] = 0
	}
	bf.Codebook.Evaluate(x, s.bits)
	inputWords := s.bits.Words()
	for i := range bf.Dict.Entries {
		e := &bf.Dict.Entries[i]
		if !bitpack.MatchesMasked(inputWords, e.CommonMask, e.CommonVals) {
			continue
		}
		addr := bf.Dict.Address(e, s.bits)
		if bf.Filter != nil && !bf.Filter.Contains(Key(e.ID, addr)) {
			continue
		}
		if ri, ok := bf.Table.Lookup(e.ID, addr); ok {
			for c, v := range bf.Table.Votes(ri) {
				votes[c] += v
			}
		}
	}
}

// Predict returns the weighted-majority class for x using the provided
// scratch. Ties break toward the lowest class index, matching
// forest.Forest.Predict exactly. For regression forests use
// PredictValue.
func (bf *Forest) Predict(x []float32, s *Scratch) int {
	if bf.Kind == tree.Regression {
		panic("core: Predict on a regression forest (use PredictValue)")
	}
	bf.Votes(x, s, s.votes)
	return forest.Argmax(s.votes)
}

// PredictValue returns the regression output for x, applying exactly
// the aggregation of forest.Forest.PredictValue: (Bias + table
// contributions) divided by WeightOne for additive ensembles or by the
// total weight for mean ensembles.
func (bf *Forest) PredictValue(x []float32, s *Scratch) float32 {
	if bf.Kind != tree.Regression {
		panic("core: PredictValue on a classification forest")
	}
	bf.Votes(x, s, s.votes)
	denom := bf.TotalWeight
	if bf.Additive {
		denom = forest.WeightOne
	}
	return float32(float64(bf.Bias+s.votes[0]) / float64(denom))
}

// PredictBatch classifies every row of X with a private scratch.
func (bf *Forest) PredictBatch(X [][]float32) []int {
	s := bf.NewScratch()
	out := make([]int, len(X))
	for i, x := range X {
		out[i] = bf.Predict(x, s)
	}
	return out
}

// CheckSafety verifies the paper's safety property (footnote 1) on the
// given inputs: Bolt's accumulated votes must equal the original
// forest's for every sample — per-class weighted votes for
// classification, the integer value contribution for regression. It
// returns the first divergence found.
func (bf *Forest) CheckSafety(f *forest.Forest, X [][]float32) error {
	s := bf.NewScratch()
	if bf.Kind == tree.Regression {
		boltVotes := make([]int64, 1)
		for i, x := range X {
			bf.Votes(x, s, boltVotes)
			if ref := f.ValueVotes(x); boltVotes[0] != ref {
				return fmt.Errorf("core: regression safety violation on sample %d: bolt=%d forest=%d",
					i, boltVotes[0], ref)
			}
		}
		return nil
	}
	boltVotes := make([]int64, bf.NumClasses)
	refVotes := make([]int64, bf.NumClasses)
	for i, x := range X {
		bf.Votes(x, s, boltVotes)
		f.Votes(x, refVotes)
		for c := range boltVotes {
			if boltVotes[c] != refVotes[c] {
				return fmt.Errorf("core: safety violation on sample %d class %d: bolt=%d forest=%d",
					i, c, boltVotes[c], refVotes[c])
			}
		}
	}
	return nil
}

// Salience returns, for sample x, how many matched paths used each
// feature — Bolt's local-explanation workload (§2: "Bolt uses
// associative arrays to track salient features ... with one memory
// access per tree inference"). The count for a feature is the number of
// matched dictionary entries whose common pairs or address bits test it.
func (bf *Forest) Salience(x []float32, s *Scratch) []int {
	counts := make([]int, bf.NumFeatures)
	bf.Codebook.Evaluate(x, s.bits)
	inputWords := s.bits.Words()
	for i := range bf.Dict.Entries {
		e := &bf.Dict.Entries[i]
		if !bitpack.MatchesMasked(inputWords, e.CommonMask, e.CommonVals) {
			continue
		}
		addr := bf.Dict.Address(e, s.bits)
		if _, ok := bf.Table.Lookup(e.ID, addr); !ok {
			continue
		}
		// Common features.
		for w, mask := range e.CommonMask {
			for mask != 0 {
				b := mask & (-mask)
				pred := int32(w*64 + bits.TrailingZeros64(b))
				counts[bf.Codebook.Predicate(pred).Feature]++
				mask ^= b
			}
		}
		// Uncommon (address) features.
		for _, pred := range e.Uncommon {
			counts[bf.Codebook.Predicate(pred).Feature]++
		}
	}
	return counts
}
