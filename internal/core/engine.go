package core

import (
	"fmt"

	"bolt/internal/bitpack"
	"bolt/internal/forest"
	"bolt/internal/tree"
)

// Scratch holds the per-goroutine reusable buffers of the inference hot
// path, so steady-state inference performs zero allocations. The batch
// buffers are grown on first batch use and reused afterwards.
type Scratch struct {
	bits  *bitpack.Bitset
	votes []int64

	// Batch kernel state (see batch.go). block is the samples-per-block
	// choice (0 until first use or SetBatchBlock); rowBits holds the
	// sample-major bitset block, cols its predicate-major transpose,
	// batchVotes the per-block vote accumulators for PredictBatchInto.
	block      int
	rowBits    []uint64
	cols       []uint64
	batchVotes []int64
}

// forEachHit is the shared per-sample dictionary scan: for every entry
// whose common-mask membership test passes on the evaluated input words
// and whose (entryID, address) key survives the bloom filter and
// verifies in the recombined table, it calls fn with the entry index and
// the table's result index. Votes and SalienceInto both route through
// it; the closure stays on the stack, so the scan allocates nothing.
//
//bolt:hotpath
func (bf *Forest) forEachHit(inputWords []uint64, fn func(entry int, result uint32)) {
	fd := bf.Flat
	for i, n := 0, fd.Len(); i < n; i++ {
		mask, vals := fd.MaskVals(i)
		if !bitpack.MatchesMasked(inputWords, mask, vals) {
			continue
		}
		addr := uint64(0)
		for bi, pred := range fd.Uncommon(i) {
			bit := (inputWords[pred>>6] >> uint(pred&63)) & 1
			addr |= bit << uint(bi)
		}
		id := fd.ID(i)
		if bf.Filter != nil && !bf.Filter.Contains(Key(id, addr)) {
			continue
		}
		if ri, ok := bf.Table.Lookup(id, addr); ok {
			fn(i, ri)
		}
	}
}

// Votes runs Bolt inference for x, accumulating per-class weighted
// votes into votes (length NumClasses, zeroed first). The flow is
// Fig. 7's processing-engine loop:
//
//  1. encode the input once: evaluate every predicate into a bitset;
//  2. for each dictionary entry, test the common-feature mask with
//     word-wide AND/compare (no per-node branching);
//  3. on a mask match, gather the uncommon bits into the table address,
//     consult the bloom filter, and — if it may be present — probe the
//     recombined table, which verifies the (entryID, address) key to
//     reject false positives (§4.3);
//  4. a verified hit contributes its pre-summed vote vector.
//
//bolt:hotpath
func (bf *Forest) Votes(x []float32, s *Scratch, votes []int64) {
	if len(x) != bf.NumFeatures {
		panicFeatures(len(x), bf.NumFeatures)
	}
	if len(votes) != bf.VoteWidth() {
		panicBufLen("votes", len(votes), bf.VoteWidth())
	}
	for i := range votes {
		votes[i] = 0
	}
	bf.Codebook.Evaluate(x, s.bits)
	table := bf.Table
	bf.forEachHit(s.bits.Words(), func(_ int, ri uint32) {
		for c, v := range table.Votes(ri) {
			votes[c] += v
		}
	})
}

// Predict returns the weighted-majority class for x using the provided
// scratch. Ties break toward the lowest class index, matching
// forest.Forest.Predict exactly. For regression forests use
// PredictValue.
func (bf *Forest) Predict(x []float32, s *Scratch) int {
	if bf.Kind == tree.Regression {
		panic("core: Predict on a regression forest (use PredictValue)")
	}
	bf.Votes(x, s, s.votes)
	return forest.Argmax(s.votes)
}

// PredictValue returns the regression output for x, applying exactly
// the aggregation of forest.Forest.PredictValue: (Bias + table
// contributions) divided by WeightOne for additive ensembles or by the
// total weight for mean ensembles.
func (bf *Forest) PredictValue(x []float32, s *Scratch) float32 {
	if bf.Kind != tree.Regression {
		panic("core: PredictValue on a classification forest")
	}
	bf.Votes(x, s, s.votes)
	denom := bf.TotalWeight
	if bf.Additive {
		denom = forest.WeightOne
	}
	return float32(float64(bf.Bias+s.votes[0]) / float64(denom))
}

// PredictBatch classifies every row of X with a private scratch,
// running the cache-blocked batch kernel (see batch.go).
func (bf *Forest) PredictBatch(X [][]float32) []int {
	s := bf.NewScratch()
	out := make([]int, len(X))
	bf.PredictBatchInto(X, s, out)
	return out
}

// CheckSafety verifies the paper's safety property (footnote 1) on the
// given inputs: Bolt's accumulated votes must equal the original
// forest's for every sample — per-class weighted votes for
// classification, the integer value contribution for regression — and
// the batch kernel (serial and parallel, across worker counts 1..8)
// must be bit-exact with the per-sample path. It returns the first
// divergence found.
func (bf *Forest) CheckSafety(f *forest.Forest, X [][]float32) error {
	s := bf.NewScratch()
	vw := bf.VoteWidth()
	batch := make([]int64, len(X)*vw)
	bf.VotesBatch(X, s, batch)
	if bf.Kind == tree.Regression {
		boltVotes := make([]int64, 1)
		for i, x := range X {
			bf.Votes(x, s, boltVotes)
			if ref := f.ValueVotes(x); boltVotes[0] != ref {
				return fmt.Errorf("core: regression safety violation on sample %d: bolt=%d forest=%d",
					i, boltVotes[0], ref)
			}
			if batch[i] != boltVotes[0] {
				return fmt.Errorf("core: batch kernel diverges on sample %d: batch=%d row=%d",
					i, batch[i], boltVotes[0])
			}
		}
		return bf.checkParallelBatch(X, batch)
	}
	boltVotes := make([]int64, bf.NumClasses)
	refVotes := make([]int64, bf.NumClasses)
	for i, x := range X {
		bf.Votes(x, s, boltVotes)
		f.Votes(x, refVotes)
		for c := range boltVotes {
			if boltVotes[c] != refVotes[c] {
				return fmt.Errorf("core: safety violation on sample %d class %d: bolt=%d forest=%d",
					i, c, boltVotes[c], refVotes[c])
			}
			if batch[i*vw+c] != boltVotes[c] {
				return fmt.Errorf("core: batch kernel diverges on sample %d class %d: batch=%d row=%d",
					i, c, batch[i*vw+c], boltVotes[c])
			}
		}
	}
	return bf.checkParallelBatch(X, batch)
}

// checkParallelBatch compares the parallel batch kernel against the
// serial batch votes for every worker count 1..8. batch has already
// been verified bit-exact with the row path by CheckSafety, so a clean
// pass here proves the parallel kernel against both references.
func (bf *Forest) checkParallelBatch(X [][]float32, batch []int64) error {
	vw := bf.VoteWidth()
	par := make([]int64, len(X)*vw)
	for workers := 1; workers <= 8; workers++ {
		rt := NewRuntime(bf, workers)
		bf.VotesBatchParallel(X, rt, par)
		rt.Close()
		for i := 0; i < len(X); i++ {
			for c := 0; c < vw; c++ {
				if par[i*vw+c] != batch[i*vw+c] {
					return fmt.Errorf("core: parallel batch kernel (workers=%d) diverges on sample %d class %d: parallel=%d serial=%d",
						workers, i, c, par[i*vw+c], batch[i*vw+c])
				}
			}
		}
	}
	return nil
}

// SalienceInto computes, for sample x, how many matched paths used each
// feature — Bolt's local-explanation workload (§2: "Bolt uses
// associative arrays to track salient features ... with one memory
// access per tree inference"). The count for a feature is the number of
// matched dictionary entries whose common pairs or address bits test
// it. counts must have length NumFeatures; it is zeroed first, and the
// call allocates nothing.
//
//bolt:hotpath
func (bf *Forest) SalienceInto(x []float32, s *Scratch, counts []int) {
	if len(counts) != bf.NumFeatures {
		panicBufLen("counts", len(counts), bf.NumFeatures)
	}
	for i := range counts {
		counts[i] = 0
	}
	bf.Codebook.Evaluate(x, s.bits)
	fd, cb := bf.Flat, bf.Codebook
	bf.forEachHit(s.bits.Words(), func(e int, _ uint32) {
		for _, packed := range fd.Common(e) {
			counts[cb.Predicate(packed>>1).Feature]++
		}
		for _, pred := range fd.Uncommon(e) {
			counts[cb.Predicate(pred).Feature]++
		}
	})
}

// Cold panic helpers. Hoisting the fmt formatting out of the
// //bolt:hotpath kernels keeps their bodies free of allocating
// constructs (boltvet's hotalloc analyzer enforces this); the helpers
// only run on contract violations, where allocation is irrelevant.
func panicFeatures(got, want int) {
	panic(fmt.Sprintf("core: input has %d features, forest expects %d", got, want))
}

func panicBufLen(what string, got, want int) {
	panic(fmt.Sprintf("core: %s buffer length %d, want %d", what, got, want))
}

// Salience is the allocating convenience wrapper around SalienceInto.
func (bf *Forest) Salience(x []float32, s *Scratch) []int {
	counts := make([]int, bf.NumFeatures)
	bf.SalienceInto(x, s, counts)
	return counts
}
