package core

import (
	"fmt"

	"bolt/internal/bitpack"
	"bolt/internal/forest"
	"bolt/internal/tree"
)

// Scratch holds the per-goroutine reusable buffers of the inference hot
// path, so steady-state inference performs zero allocations. The batch
// buffers are grown on first batch use and reused afterwards.
type Scratch struct {
	bits  *bitpack.Bitset
	votes []int64

	// Batch kernel state (see batch.go). block is the samples-per-block
	// choice (0 until first use or SetBatchBlock); rowBits holds the
	// sample-major bitset block, cols its predicate-major transpose,
	// batchVotes the per-block vote accumulators for PredictBatchInto.
	block      int
	rowBits    []uint64
	cols       []uint64
	batchVotes []int64

	// Compact-path state (see compactscan.go): per-entry decode buffers
	// for the packed common pairs and address predicates, plus the
	// knee-point result store hydrated to flat int64 once per scratch —
	// the batch kernel accumulates hits from resDec at flat-path speed
	// while the resident model keeps the compressed form.
	pairBuf []int32
	uncBuf  []int32
	resDec  []int64

	// Tiered-kernel state (see tiered.go): survivor compaction buffers.
	// After the tier-0 scan the undecided samples of a block are packed
	// densely — rows gathered into survRows, re-transposed into
	// survCols, partial votes into survVotes, original positions in
	// survIdx — so the tier-1 scan runs the same column kernel over a
	// smaller block. Grown once; steady state allocates nothing.
	survRows  []uint64
	survCols  []uint64
	survVotes []int64
	survIdx   []int32
}

// forEachHit is the shared per-sample dictionary scan: for every entry
// whose common-mask membership test passes on the evaluated input words
// and whose (entryID, address) key survives the bloom filter and
// verifies in the recombined table, it calls fn with the entry index and
// the table's result index. Votes and SalienceInto both route through
// it; the closure stays on the stack, so the scan allocates nothing.
// The active memory layout picks the scan (see compactscan.go).
//
//bolt:hotpath
func (bf *Forest) forEachHit(inputWords []uint64, fn func(entry int, result uint32)) {
	if bf.scanCompact {
		bf.forEachHitCompact(inputWords, fn)
		return
	}
	bf.forEachHitFlat(inputWords, fn)
}

// forEachHitFlat scans the uncompressed FlatDict form.
//
//bolt:hotpath
func (bf *Forest) forEachHitFlat(inputWords []uint64, fn func(entry int, result uint32)) {
	fd := bf.Flat
	for i, n := 0, fd.Len(); i < n; i++ {
		mask, vals := fd.MaskVals(i)
		if !bitpack.MatchesMasked(inputWords, mask, vals) {
			continue
		}
		addr := uint64(0)
		for bi, pred := range fd.Uncommon(i) {
			bit := (inputWords[pred>>6] >> uint(pred&63)) & 1
			addr |= bit << uint(bi)
		}
		id := fd.ID(i)
		if bf.Filter != nil && !bf.Filter.Contains(Key(id, addr)) {
			continue
		}
		if ri, ok := bf.Table.Lookup(id, addr); ok {
			fn(i, ri)
		}
	}
}

// Votes runs Bolt inference for x, accumulating per-class weighted
// votes into votes (length NumClasses, zeroed first). The flow is
// Fig. 7's processing-engine loop:
//
//  1. encode the input once: evaluate every predicate into a bitset;
//  2. for each dictionary entry, test the common-feature mask with
//     word-wide AND/compare (no per-node branching);
//  3. on a mask match, gather the uncommon bits into the table address,
//     consult the bloom filter, and — if it may be present — probe the
//     recombined table, which verifies the (entryID, address) key to
//     reject false positives (§4.3);
//  4. a verified hit contributes its pre-summed vote vector.
//
//bolt:hotpath
func (bf *Forest) Votes(x []float32, s *Scratch, votes []int64) {
	if len(x) != bf.NumFeatures {
		panicFeatures(len(x), bf.NumFeatures)
	}
	if len(votes) != bf.VoteWidth() {
		panicBufLen("votes", len(votes), bf.VoteWidth())
	}
	for i := range votes {
		votes[i] = 0
	}
	bf.Codebook.Evaluate(x, s.bits)
	if bf.scanCompact {
		// Compact layout: scan the compressed dictionary and decode
		// knee-point results straight into the accumulators.
		cr := bf.Compact.Table.Results
		bf.forEachHitCompact(s.bits.Words(), func(_ int, ri uint32) {
			cr.AccumulateInto(votes, ri)
		})
		return
	}
	table := bf.Table
	bf.forEachHitFlat(s.bits.Words(), func(_ int, ri uint32) {
		for c, v := range table.Votes(ri) {
			votes[c] += v
		}
	})
}

// Predict returns the weighted-majority class for x using the provided
// scratch. Ties break toward the lowest class index, matching
// forest.Forest.Predict exactly. For regression forests use
// PredictValue.
func (bf *Forest) Predict(x []float32, s *Scratch) int {
	if bf.Kind == tree.Regression {
		panic("core: Predict on a regression forest (use PredictValue)")
	}
	bf.Votes(x, s, s.votes)
	return forest.Argmax(s.votes)
}

// PredictValue returns the regression output for x, applying exactly
// the aggregation of forest.Forest.PredictValue: (Bias + table
// contributions) divided by WeightOne for additive ensembles or by the
// total weight for mean ensembles.
func (bf *Forest) PredictValue(x []float32, s *Scratch) float32 {
	if bf.Kind != tree.Regression {
		panic("core: PredictValue on a classification forest")
	}
	bf.Votes(x, s, s.votes)
	denom := bf.TotalWeight
	if bf.Additive {
		denom = forest.WeightOne
	}
	return float32(float64(bf.Bias+s.votes[0]) / float64(denom))
}

// PredictBatch classifies every row of X with a private scratch,
// running the cache-blocked batch kernel (see batch.go).
func (bf *Forest) PredictBatch(X [][]float32) []int {
	s := bf.NewScratch()
	out := make([]int, len(X))
	bf.PredictBatchInto(X, s, out)
	return out
}

// CheckSafety verifies the paper's safety property (footnote 1) on the
// given inputs: Bolt's accumulated votes must equal the original
// forest's for every sample — per-class weighted votes for
// classification, the integer value contribution for regression — and
// the batch kernel (serial and parallel, across worker counts 1..8)
// must be bit-exact with the per-sample path. Both memory layouts are
// exercised: after the active layout verifies, the inactive one (flat
// or §5 compact, whichever the size heuristic did not pick) is run
// through the row and batch paths against the same votes. It returns
// the first divergence found. CheckSafety briefly toggles the layout
// selection, so it must not run concurrently with inference on the
// same forest.
func (bf *Forest) CheckSafety(f *forest.Forest, X [][]float32) error {
	s := bf.NewScratch()
	vw := bf.VoteWidth()
	batch := make([]int64, len(X)*vw)
	bf.VotesBatch(X, s, batch)
	if bf.Kind == tree.Regression {
		boltVotes := make([]int64, 1)
		for i, x := range X {
			bf.Votes(x, s, boltVotes)
			if ref := f.ValueVotes(x); boltVotes[0] != ref {
				return fmt.Errorf("core: regression safety violation on sample %d: bolt=%d forest=%d",
					i, boltVotes[0], ref)
			}
			if batch[i] != boltVotes[0] {
				return fmt.Errorf("core: batch kernel diverges on sample %d: batch=%d row=%d",
					i, batch[i], boltVotes[0])
			}
		}
		if err := bf.checkParallelBatch(X, batch); err != nil {
			return err
		}
		return bf.checkAltLayout(X, batch)
	}
	boltVotes := make([]int64, bf.NumClasses)
	refVotes := make([]int64, bf.NumClasses)
	for i, x := range X {
		bf.Votes(x, s, boltVotes)
		f.Votes(x, refVotes)
		for c := range boltVotes {
			if boltVotes[c] != refVotes[c] {
				return fmt.Errorf("core: safety violation on sample %d class %d: bolt=%d forest=%d",
					i, c, boltVotes[c], refVotes[c])
			}
			if batch[i*vw+c] != boltVotes[c] {
				return fmt.Errorf("core: batch kernel diverges on sample %d class %d: batch=%d row=%d",
					i, c, batch[i*vw+c], boltVotes[c])
			}
		}
	}
	if err := bf.checkParallelBatch(X, batch); err != nil {
		return err
	}
	if err := bf.checkAltLayout(X, batch); err != nil {
		return err
	}
	return bf.checkTieredExact(X, batch)
}

// checkTieredExact proves the exact-mode tiered kernels against the
// verified monolithic batch votes, on both memory layouts and the
// serial and parallel paths: every tiered label must equal the
// monolithic argmax, and every tiered vote row must either be bit-exact
// with the monolithic row (the sample escalated) or be a tier-0 prefix
// whose lead strictly exceeds the exact margin (the decision bound that
// makes the label provably final). No-op on untier'd forests.
func (bf *Forest) checkTieredExact(X [][]float32, batch []int64) error {
	if !bf.Tiered() {
		return nil
	}
	vw := bf.VoteWidth()
	saved := bf.scanCompact
	defer func() { bf.scanCompact = saved }()
	tv := make([]int64, len(X)*vw)
	out := make([]int, len(X))
	par := make([]int, len(X))
	for _, compact := range []bool{false, true} {
		bf.scanCompact = compact
		layout := bf.LayoutName()
		s := bf.NewScratch()
		var ts TierStats
		bf.VotesBatchTiered(X, s, tv, -1, &ts)
		bf.PredictBatchTieredInto(X, s, -1, out, nil)
		if got, want := ts.Total(), int64(len(X)); got != want {
			return fmt.Errorf("core: %s tiered stats cover %d of %d samples", layout, got, want)
		}
		for i := range X {
			row := tv[i*vw : (i+1)*vw]
			ref := forest.Argmax(batch[i*vw : (i+1)*vw])
			if got := forest.Argmax(row); got != ref {
				return fmt.Errorf("core: %s tiered votes flip sample %d: tiered=%d monolithic=%d", layout, i, got, ref)
			}
			if out[i] != ref {
				return fmt.Errorf("core: %s tiered predict flips sample %d: tiered=%d monolithic=%d", layout, i, out[i], ref)
			}
			full := true
			for c := 0; c < vw; c++ {
				if row[c] != batch[i*vw+c] {
					full = false
					break
				}
			}
			if !full && tierLead(row) <= bf.TierWeight {
				return fmt.Errorf("core: %s tiered sample %d decided with lead %d <= exact margin %d", layout, i, tierLead(row), bf.TierWeight)
			}
		}
		for workers := 1; workers <= 4; workers++ {
			rt := NewRuntime(bf, workers)
			var pts TierStats
			bf.PredictBatchTieredParallelInto(X, rt, -1, par, &pts)
			rt.Close()
			if got, want := pts.Total(), int64(len(X)); got != want {
				return fmt.Errorf("core: %s parallel tiered stats (workers=%d) cover %d of %d samples", layout, workers, got, want)
			}
			for i := range X {
				if ref := forest.Argmax(batch[i*vw : (i+1)*vw]); par[i] != ref {
					return fmt.Errorf("core: %s parallel tiered (workers=%d) flips sample %d: tiered=%d monolithic=%d",
						layout, workers, i, par[i], ref)
				}
			}
		}
	}
	return nil
}

// checkAltLayout re-runs the row and serial batch paths with the
// layout selection inverted and compares against the already-verified
// batch votes, so both the flat and compact scans are proven bit-exact
// regardless of which one the forest actively uses.
func (bf *Forest) checkAltLayout(X [][]float32, batch []int64) error {
	saved := bf.scanCompact
	defer func() { bf.scanCompact = saved }()
	bf.scanCompact = !saved
	layout := bf.LayoutName()
	vw := bf.VoteWidth()
	s := bf.NewScratch()
	alt := make([]int64, len(X)*vw)
	bf.VotesBatch(X, s, alt)
	row := make([]int64, vw)
	for i, x := range X {
		bf.Votes(x, s, row)
		for c := 0; c < vw; c++ {
			if alt[i*vw+c] != batch[i*vw+c] {
				return fmt.Errorf("core: %s batch kernel diverges on sample %d class %d: %s=%d active=%d",
					layout, i, c, layout, alt[i*vw+c], batch[i*vw+c])
			}
			if row[c] != batch[i*vw+c] {
				return fmt.Errorf("core: %s row path diverges on sample %d class %d: %s=%d active=%d",
					layout, i, c, layout, row[c], batch[i*vw+c])
			}
		}
	}
	return nil
}

// checkParallelBatch compares the parallel batch kernel against the
// serial batch votes for every worker count 1..8. batch has already
// been verified bit-exact with the row path by CheckSafety, so a clean
// pass here proves the parallel kernel against both references.
func (bf *Forest) checkParallelBatch(X [][]float32, batch []int64) error {
	vw := bf.VoteWidth()
	par := make([]int64, len(X)*vw)
	for workers := 1; workers <= 8; workers++ {
		rt := NewRuntime(bf, workers)
		bf.VotesBatchParallel(X, rt, par)
		rt.Close()
		for i := 0; i < len(X); i++ {
			for c := 0; c < vw; c++ {
				if par[i*vw+c] != batch[i*vw+c] {
					return fmt.Errorf("core: parallel batch kernel (workers=%d) diverges on sample %d class %d: parallel=%d serial=%d",
						workers, i, c, par[i*vw+c], batch[i*vw+c])
				}
			}
		}
	}
	return nil
}

// SalienceInto computes, for sample x, how many matched paths used each
// feature — Bolt's local-explanation workload (§2: "Bolt uses
// associative arrays to track salient features ... with one memory
// access per tree inference"). The count for a feature is the number of
// matched dictionary entries whose common pairs or address bits test
// it. counts must have length NumFeatures; it is zeroed first, and the
// call allocates nothing.
//
//bolt:hotpath
func (bf *Forest) SalienceInto(x []float32, s *Scratch, counts []int) {
	if len(counts) != bf.NumFeatures {
		panicBufLen("counts", len(counts), bf.NumFeatures)
	}
	for i := range counts {
		counts[i] = 0
	}
	bf.Codebook.Evaluate(x, s.bits)
	cb := bf.Codebook
	if bf.scanCompact {
		cd := bf.Compact
		bf.forEachHitCompact(s.bits.Words(), func(e int, _ uint32) {
			co, ce := int(cd.commonOff.Get(e)), int(cd.commonOff.Get(e+1))
			r := cd.common.ReaderAt(co)
			for k := co; k < ce; k++ {
				counts[cb.Predicate(int32(r.Next())>>1).Feature]++
			}
			uo, ue := int(cd.uncOff.Get(e)), int(cd.uncOff.Get(e+1))
			ur := cd.uncommon.ReaderAt(uo)
			for k := uo; k < ue; k++ {
				counts[cb.Predicate(int32(ur.Next())).Feature]++
			}
		})
		return
	}
	fd := bf.Flat
	bf.forEachHitFlat(s.bits.Words(), func(e int, _ uint32) {
		for _, packed := range fd.Common(e) {
			counts[cb.Predicate(packed>>1).Feature]++
		}
		for _, pred := range fd.Uncommon(e) {
			counts[cb.Predicate(pred).Feature]++
		}
	})
}

// Cold panic helpers. Hoisting the fmt formatting out of the
// //bolt:hotpath kernels keeps their bodies free of allocating
// constructs (boltvet's hotalloc analyzer enforces this); the helpers
// only run on contract violations, where allocation is irrelevant.
func panicFeatures(got, want int) {
	panic(fmt.Sprintf("core: input has %d features, forest expects %d", got, want))
}

func panicBufLen(what string, got, want int) {
	panic(fmt.Sprintf("core: %s buffer length %d, want %d", what, got, want))
}

// Salience is the allocating convenience wrapper around SalienceInto.
func (bf *Forest) Salience(x []float32, s *Scratch) []int {
	counts := make([]int, bf.NumFeatures)
	bf.SalienceInto(x, s, counts)
	return counts
}
