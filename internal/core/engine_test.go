package core

import (
	"testing"
	"testing/quick"

	"bolt/internal/dataset"
	"bolt/internal/forest"
	"bolt/internal/rng"
	"bolt/internal/tree"
)

func trainForest(t testing.TB, seed uint64, trees, depth int) (*forest.Forest, *dataset.Dataset) {
	d := dataset.SyntheticBlobs(400, 8, 3, 1.2, seed)
	f := forest.Train(d, forest.Config{
		NumTrees: trees,
		Tree:     tree.Config{MaxDepth: depth},
		Seed:     seed,
	})
	if err := f.Validate(); err != nil {
		t.Fatal(err)
	}
	return f, d
}

func randomInputs(n, features int, seed uint64) [][]float32 {
	r := rng.New(seed)
	X := make([][]float32, n)
	for i := range X {
		x := make([]float32, features)
		for j := range x {
			x[j] = float32(r.Float64()*60 - 10)
		}
		X[i] = x
	}
	return X
}

// TestSafetyProperty is the headline invariant (paper footnote 1):
// Bolt's aggregated votes equal the original forest's for every input,
// across cluster thresholds and bloom configurations.
func TestSafetyProperty(t *testing.T) {
	f, d := trainForest(t, 41, 10, 4)
	X := append(append([][]float32{}, d.X...), randomInputs(300, d.NumFeatures, 42)...)
	for _, opt := range []Options{
		{ClusterThreshold: -1}, // normalises to 0: exact-duplicate merging only
		{ClusterThreshold: 1},
		{ClusterThreshold: 2},
		{ClusterThreshold: 4},
		{ClusterThreshold: 8},
		{ClusterThreshold: 16},
		{ClusterThreshold: 8, BloomBitsPerKey: -1}, // filter disabled
		{ClusterThreshold: 8, BloomBitsPerKey: 16},
		{ClusterThreshold: 8, TableLoadFactor: 0.25},
	} {
		bf, err := Compile(f, opt)
		if err != nil {
			t.Fatalf("Compile(%+v): %v", opt, err)
		}
		if err := bf.CheckSafety(f, X); err != nil {
			t.Errorf("options %+v: %v", opt, err)
		}
	}
}

// TestSafetyQuick fuzzes forests and inputs.
func TestSafetyQuick(t *testing.T) {
	check := func(seed uint64, thresholdRaw uint8, treesRaw, depthRaw uint8) bool {
		trees := int(treesRaw%12) + 2
		depth := int(depthRaw%5) + 1
		f, d := trainForest(t, seed, trees, depth)
		bf, err := Compile(f, Options{ClusterThreshold: int(thresholdRaw%12) + 1, Seed: seed})
		if err != nil {
			t.Logf("compile failed: %v", err)
			return false
		}
		X := append(d.X[:100], randomInputs(50, d.NumFeatures, seed^7)...)
		return bf.CheckSafety(f, X) == nil
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func TestSafetyWeightedForest(t *testing.T) {
	d := dataset.SyntheticBlobs(300, 6, 3, 1.5, 43)
	f := forest.TrainBoosted(d, forest.Config{NumTrees: 10, Tree: tree.Config{MaxDepth: 3}, Seed: 44})
	bf, err := Compile(f, Options{ClusterThreshold: 6})
	if err != nil {
		t.Fatal(err)
	}
	X := append(d.X, randomInputs(200, d.NumFeatures, 45)...)
	if err := bf.CheckSafety(f, X); err != nil {
		t.Fatal(err)
	}
}

func TestSafetySingleLeafForest(t *testing.T) {
	// Degenerate case: trees are bare leaves (pure training labels).
	d := &dataset.Dataset{Name: "pure", NumFeatures: 2, NumClasses: 2,
		X: [][]float32{{1, 2}, {3, 4}}, Y: []int{1, 1}}
	f := forest.Train(d, forest.Config{NumTrees: 3, Tree: tree.Config{MaxDepth: 4}, Seed: 46})
	bf, err := Compile(f, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := bf.CheckSafety(f, randomInputs(50, 2, 47)); err != nil {
		t.Fatal(err)
	}
	if bf.Predict([]float32{0, 0}, bf.NewScratch()) != 1 {
		t.Error("degenerate forest mispredicts")
	}
}

func TestVotesSumToTotalWeight(t *testing.T) {
	f, d := trainForest(t, 48, 10, 4)
	bf, err := Compile(f, Options{ClusterThreshold: 6})
	if err != nil {
		t.Fatal(err)
	}
	s := bf.NewScratch()
	votes := make([]int64, bf.NumClasses)
	for _, x := range d.X[:100] {
		bf.Votes(x, s, votes)
		sum := int64(0)
		for _, v := range votes {
			sum += v
		}
		if sum != bf.TotalWeight {
			t.Fatalf("votes sum %d != total weight %d (a tree lost or double-counted)", sum, bf.TotalWeight)
		}
	}
}

func TestPredictAccuracyMatchesForest(t *testing.T) {
	f, d := trainForest(t, 49, 12, 4)
	bf, err := Compile(f, Options{})
	if err != nil {
		t.Fatal(err)
	}
	got := bf.PredictBatch(d.X)
	want := f.PredictBatch(d.X)
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("prediction %d differs: bolt=%d forest=%d", i, got[i], want[i])
		}
	}
}

func TestCompactIDsMostlyAgree(t *testing.T) {
	// The paper's one-byte entry IDs are probabilistic (§5); verify the
	// compact engine stays overwhelmingly consistent with the forest on
	// this workload and report the divergence rate.
	f, d := trainForest(t, 50, 10, 4)
	bf, err := Compile(f, Options{ClusterThreshold: 6, CompactIDs: true})
	if err != nil {
		t.Fatal(err)
	}
	X := append(append([][]float32{}, d.X...), randomInputs(400, d.NumFeatures, 51)...)
	want := f.PredictBatch(X)
	got := bf.PredictBatch(X)
	diverge := 0
	for i := range got {
		if got[i] != want[i] {
			diverge++
		}
	}
	// Mis-aggregation needs a mask-matching miss whose one-byte tag
	// collides (~2/256 per miss candidate), so a few percent divergence
	// on adversarially random inputs is expected; the strict mode test
	// above is the exact one.
	if rate := float64(diverge) / float64(len(X)); rate > 0.05 {
		t.Errorf("compact-ID divergence rate %g > 5%%", rate)
	}
}

func TestCompileRejectsInvalidForest(t *testing.T) {
	if _, err := Compile(&forest.Forest{NumFeatures: 1, NumClasses: 1}, Options{}); err == nil {
		t.Fatal("invalid forest compiled")
	}
}

func TestVotesPanicsOnBadShapes(t *testing.T) {
	f, _ := trainForest(t, 52, 4, 3)
	bf, err := Compile(f, Options{})
	if err != nil {
		t.Fatal(err)
	}
	s := bf.NewScratch()
	t.Run("wrong feature count", func(t *testing.T) {
		defer func() {
			if recover() == nil {
				t.Fatal("expected panic")
			}
		}()
		bf.Votes(make([]float32, 3), s, make([]int64, bf.NumClasses))
	})
	t.Run("wrong votes length", func(t *testing.T) {
		defer func() {
			if recover() == nil {
				t.Fatal("expected panic")
			}
		}()
		bf.Votes(make([]float32, bf.NumFeatures), s, make([]int64, 1))
	})
}

func TestCheckSafetyDetectsCorruption(t *testing.T) {
	f, d := trainForest(t, 53, 6, 3)
	bf, err := Compile(f, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt every result vector: any sample accumulating votes (all of
	// them — votes always sum to TotalWeight) must now diverge.
	for i := range bf.Table.results {
		bf.Table.results[i][0] += 12345
	}
	if err := bf.CheckSafety(f, d.X); err == nil {
		t.Fatal("corrupted table passed CheckSafety")
	}
}

func TestStats(t *testing.T) {
	f, _ := trainForest(t, 54, 8, 4)
	bf, err := Compile(f, Options{ClusterThreshold: 5})
	if err != nil {
		t.Fatal(err)
	}
	st := bf.Stats()
	if st.DictEntries == 0 || st.TableEntries == 0 || st.Predicates == 0 {
		t.Errorf("stats look empty: %+v", st)
	}
	if st.MaxUncommon > 5 {
		t.Errorf("MaxUncommon %d exceeds threshold 5", st.MaxUncommon)
	}
	if st.TableSlots < st.TableEntries {
		t.Errorf("fewer slots than entries: %+v", st)
	}
	if st.BloomBytes == 0 {
		t.Errorf("bloom filter enabled but BloomBytes = 0")
	}
	if st.ResultVectors > st.TableEntries {
		t.Errorf("more result vectors than entries: %+v", st)
	}
}

func TestSalience(t *testing.T) {
	f, d := trainForest(t, 55, 8, 4)
	bf, err := Compile(f, Options{})
	if err != nil {
		t.Fatal(err)
	}
	s := bf.NewScratch()
	counts := bf.Salience(d.X[0], s)
	if len(counts) != d.NumFeatures {
		t.Fatalf("salience length %d, want %d", len(counts), d.NumFeatures)
	}
	total := 0
	for _, c := range counts {
		total += c
	}
	if total == 0 {
		t.Fatal("no salient features reported for a matching input")
	}
}

func TestThresholdTradesDictForTable(t *testing.T) {
	// Raising the cluster threshold must not increase dictionary entries
	// and generally grows the table (the §4.2 trade-off Phase 2 tunes).
	f, _ := trainForest(t, 56, 10, 4)
	small, err := Compile(f, Options{ClusterThreshold: 1})
	if err != nil {
		t.Fatal(err)
	}
	large, err := Compile(f, Options{ClusterThreshold: 12})
	if err != nil {
		t.Fatal(err)
	}
	if large.Stats().DictEntries > small.Stats().DictEntries {
		t.Errorf("threshold 12 has more dictionary entries (%d) than threshold 1 (%d)",
			large.Stats().DictEntries, small.Stats().DictEntries)
	}
	if large.Stats().TableEntries < small.Stats().TableEntries {
		t.Errorf("threshold 12 table (%d) smaller than threshold 1 (%d)",
			large.Stats().TableEntries, small.Stats().TableEntries)
	}
}

func BenchmarkBoltPredict(b *testing.B) {
	f, d := trainForest(b, 57, 10, 4)
	bf, err := Compile(f, Options{})
	if err != nil {
		b.Fatal(err)
	}
	s := bf.NewScratch()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bf.Predict(d.X[i%len(d.X)], s)
	}
}
