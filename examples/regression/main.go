// Regression: Bolt beyond classification. A bagged regression forest
// and a gradient-boosted ensemble (the weighted-tree structure §5
// supports) are trained on the Friedman #1 benchmark, compiled into
// lookup tables, verified exactly, and served over a socket.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"bolt"
)

func main() {
	data := bolt.SyntheticFriedman(3000, 1.0, 51)
	train, test := data.Split(0.8, 52)

	rf := bolt.TrainRegressionForest(train, bolt.ForestConfig{
		NumTrees: 30,
		Tree:     bolt.TreeConfig{MaxDepth: 6},
		Seed:     53,
	})
	gbt := bolt.TrainGBT(train, bolt.GBTConfig{
		Rounds:       80,
		LearningRate: 0.15,
		Tree:         bolt.TreeConfig{MaxDepth: 4, MaxFeatures: -1},
		Seed:         54,
	})
	fmt.Printf("bagged forest  RMSE: %.3f\n", bolt.RMSE(rf.PredictValueBatch(test.X), test.Values))
	fmt.Printf("boosted (GBT)  RMSE: %.3f\n", bolt.RMSE(gbt.PredictValueBatch(test.X), test.Values))

	// Compile both. The integer contribution tables make the compiled
	// engines agree with the originals bit-for-bit.
	for name, f := range map[string]*bolt.Forest{"bagged": rf, "boosted": gbt} {
		bf, err := bolt.Compile(f, bolt.Options{ClusterThreshold: 4, BloomBitsPerKey: -1})
		if err != nil {
			log.Fatal(err)
		}
		if err := bf.CheckSafety(f, test.X); err != nil {
			log.Fatal(err)
		}
		p := bolt.NewPredictor(bf)
		exact := 0
		for _, x := range test.X {
			if p.PredictValue(x) == f.PredictValue(x) {
				exact++
			}
		}
		st := bf.Stats()
		fmt.Printf("%s: compiled to %d dict entries / %d table entries; %d/%d predictions bit-identical\n",
			name, st.DictEntries, st.TableEntries, exact, test.Len())
	}

	// Serve the boosted model.
	bf, err := bolt.Compile(gbt, bolt.Options{ClusterThreshold: 4})
	if err != nil {
		log.Fatal(err)
	}
	dir, err := os.MkdirTemp("", "bolt-regression")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	sock := filepath.Join(dir, "reg.sock")
	srv, err := bolt.ServeForest(sock, bf, 0)
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	c, err := bolt.DialService(sock)
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()
	var lat []uint64
	for _, x := range test.X[:200] {
		_, ns, err := c.PredictValue(x)
		if err != nil {
			log.Fatal(err)
		}
		lat = append(lat, ns)
	}
	stats := bolt.SummarizeLatencies(lat)
	fmt.Printf("served 200 regressions: avg %v, p99 %v\n", stats.Avg, stats.P99)
}
