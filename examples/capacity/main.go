// Capacity: the planning workflow of §4.6 — "given a forest workload,
// which processor provides best performance". Model-based Phase 2
// scoring evaluates the same forest against the paper's three hardware
// profiles without running on them, diagnosing whether the bottleneck
// is LLC capacity (table spills cache) or processing speed (dictionary
// too long).
package main

import (
	"fmt"
	"log"

	"bolt"
)

func main() {
	data := bolt.SyntheticMNIST(2500, 41)
	train, _ := data.Split(0.8, 42)

	f := bolt.Train(train, bolt.ForestConfig{
		NumTrees: 20,
		Tree:     bolt.TreeConfig{MaxDepth: 6},
		Seed:     43,
	})
	fmt.Printf("forest: %d trees, %d paths\n", len(f.Trees), f.NumPaths())

	profiles := []bolt.HardwareProfile{
		bolt.ProfileXeonE52650,
		bolt.ProfileECSmall,
		bolt.ProfileECLarge,
	}
	for _, p := range profiles {
		best, all, err := bolt.Tune(f, bolt.TuneConfig{
			Cores:      p.Cores,
			Thresholds: []int{1, 2, 4, 6, 8},
			Mode:       bolt.TuneModelBased,
			Profile:    p,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n%-12s (%d cores, %d MB LLC): best %s\n",
			p.Name, p.Cores, p.LLCBytes>>20, best.Candidate)
		fmt.Printf("  modeled latency %.2f us/sample; dict %d entries, table %d slots\n",
			best.LatencyNs/1000, best.Stats.DictEntries, best.Stats.TableSlots)
		// Diagnose the bottleneck (§4.6): compare the best single-core
		// config against the best multi-core one.
		var bestSingle, bestMulti *bolt.TuneResult
		for i := range all {
			r := &all[i]
			if r.Err != nil {
				continue
			}
			if r.Candidate.Cores() == 1 && (bestSingle == nil || r.LatencyNs < bestSingle.LatencyNs) {
				bestSingle = r
			}
			if r.Candidate.Cores() > 1 && (bestMulti == nil || r.LatencyNs < bestMulti.LatencyNs) {
				bestMulti = r
			}
		}
		if bestSingle != nil && bestMulti != nil {
			speedup := bestSingle.LatencyNs / bestMulti.LatencyNs
			fmt.Printf("  parallelisation speedup on this part: %.2fx (%s)\n",
				speedup, bestMulti.Candidate)
		}
	}
}
