// Reviews: the wide sparse NLP workload (Yelp, §6.1 — 1500 bag-of-words
// features predicting the star rating) served by a two-layer deep
// forest (§4.6/Fig. 15): the first layer's class probabilities are
// appended to the features of the second layer, and Bolt compiles each
// layer in isolation.
package main

import (
	"fmt"
	"log"
	"time"

	"bolt"
)

func main() {
	data := bolt.SyntheticYelp(2400, 31)
	train, test := data.Split(0.8, 32)

	// Plain forest for reference.
	plain := bolt.Train(train, bolt.ForestConfig{
		NumTrees: 10,
		Tree:     bolt.TreeConfig{MaxDepth: 6},
		Seed:     33,
	})
	plainPred := plain.PredictBatch(test.X)
	fmt.Printf("plain forest accuracy:   %.3f\n", bolt.Accuracy(plainPred, test.Y))

	// Two-layer cascade.
	df := bolt.TrainDeep(train, bolt.DeepConfig{
		NumLayers:       2,
		ForestsPerLayer: 1,
		Forest: bolt.ForestConfig{
			NumTrees: 10,
			Tree:     bolt.TreeConfig{MaxDepth: 6},
		},
		Seed: 34,
	})
	deepPred := make([]int, test.Len())
	for i, x := range test.X {
		deepPred[i] = df.Predict(x)
	}
	fmt.Printf("deep forest accuracy:    %.3f\n", bolt.Accuracy(deepPred, test.Y))

	// Compile each layer into lookup tables.
	db, err := bolt.CompileDeep(df, bolt.Options{ClusterThreshold: 4, BloomBitsPerKey: -1})
	if err != nil {
		log.Fatal(err)
	}
	if err := db.CheckSafety(df, test.X[:200]); err != nil {
		log.Fatal(err)
	}
	fmt.Println("cascade safety verified: compiled layers reproduce the cascade exactly")

	// Latency comparison: cascade vs plain, Bolt engines both.
	bfPlain, err := bolt.Compile(plain, bolt.Options{ClusterThreshold: 4, BloomBitsPerKey: -1})
	if err != nil {
		log.Fatal(err)
	}
	p := bolt.NewPredictor(bfPlain)
	plainNs := timePerSample(func(x []float32) { p.Predict(x) }, test.X)
	deepNs := timePerSample(func(x []float32) { db.Predict(x) }, test.X)
	fmt.Printf("bolt plain forest:  %6.2f us/sample\n", plainNs/1000)
	fmt.Printf("bolt deep cascade:  %6.2f us/sample (two layers, features widened by %d)\n",
		deepNs/1000, df.LayerInputWidth(1)-df.NumFeatures)
}

func timePerSample(f func(x []float32), X [][]float32) float64 {
	for _, x := range X {
		f(x)
	}
	start := time.Now()
	for _, x := range X {
		f(x)
	}
	return float64(time.Since(start).Nanoseconds()) / float64(len(X))
}
