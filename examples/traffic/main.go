// Traffic: heterogeneous tabular data (the LSTW workload of §6.1) with
// a weighted boosted ensemble, plus the paper's single-sample
// parallelisation (Fig. 4): the dictionary and lookup table are
// partitioned across cores and one classification is split between
// them.
package main

import (
	"fmt"
	"log"

	"bolt"
)

func main() {
	data := bolt.SyntheticLSTW(6000, 21)
	train, test := data.Split(0.85, 22)

	// A boosted (weighted) ensemble: Bolt carries per-tree weights onto
	// paths unchanged (§5, gradient-boosting support).
	f := bolt.TrainBoosted(train, bolt.ForestConfig{
		NumTrees: 20,
		Tree:     bolt.TreeConfig{MaxDepth: 6},
		Seed:     23,
	})
	pred := f.PredictBatch(test.X)
	fmt.Printf("boosted ensemble: %d weighted trees, test accuracy %.3f\n",
		len(f.Trees), bolt.Accuracy(pred, test.Y))

	// Compile with a low threshold to keep a long dictionary — the
	// regime where splitting work across cores pays.
	bf, err := bolt.Compile(f, bolt.Options{ClusterThreshold: 1, BloomBitsPerKey: -1})
	if err != nil {
		log.Fatal(err)
	}
	if err := bf.CheckSafety(f, test.X[:300]); err != nil {
		log.Fatal(err)
	}
	st := bf.Stats()
	fmt.Printf("compiled: %d dictionary entries, %d table entries; weighted votes preserved exactly\n",
		st.DictEntries, st.TableEntries)

	// Split one sample across cores: d dictionary partitions × t table
	// partitions (Fig. 4). Every candidate lookup is owned by exactly
	// one worker, so aggregation is exact (§4.5).
	p := bolt.NewPredictor(bf)
	for _, cores := range [][2]int{{1, 1}, {2, 1}, {2, 2}, {4, 2}} {
		pe, err := bolt.NewPartitioned(bf, cores[0], cores[1])
		if err != nil {
			log.Fatal(err)
		}
		agree := 0
		for _, x := range test.X[:200] {
			if pe.Predict(x) == p.Predict(x) {
				agree++
			}
		}
		fmt.Printf("d=%d t=%d (%d cores): %d/200 predictions identical to serial\n",
			cores[0], cores[1], pe.Cores(), agree)
	}
}
