// Digits: the paper's motivating scenario (Fig. 7) — a digit
// recognition service. A forest is trained on 28×28 images, Phase-2
// tuned, served over a UNIX domain socket, and queried sequentially
// without batching; the example also renders the salience map of one
// classified digit (the explainability workload of §2).
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"bolt"
)

func main() {
	data := bolt.SyntheticMNIST(2500, 11)
	train, test := data.Split(0.8, 12)

	f := bolt.Train(train, bolt.ForestConfig{
		NumTrees: 10,
		Tree:     bolt.TreeConfig{MaxDepth: 4},
		Seed:     13,
	})
	pred := f.PredictBatch(test.X)
	fmt.Printf("forest test accuracy: %.3f\n", bolt.Accuracy(pred, test.Y))

	// Phase 2: tune threshold and filter for this machine.
	best, _, err := bolt.Tune(f, bolt.TuneConfig{
		Cores:     1,
		BloomBits: []int{-1, 4, 8},
		Inputs:    test.X[:200],
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("phase 2 selected %s (%.2f us/sample)\n", best.Candidate, best.LatencyNs/1000)
	bf := best.Forest

	// Serve it, as the paper's front-end does.
	dir, err := os.MkdirTemp("", "bolt-digits")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	sock := filepath.Join(dir, "digits.sock")
	srv, err := bolt.ServeForest(sock, bf, 0)
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()

	client, err := bolt.DialService(sock)
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()

	lat := make([]uint64, 0, 200)
	correct := 0
	for i, x := range test.X[:200] {
		label, ns, err := client.Classify(x)
		if err != nil {
			log.Fatal(err)
		}
		if label == test.Y[i] {
			correct++
		}
		lat = append(lat, ns)
	}
	stats := bolt.SummarizeLatencies(lat)
	fmt.Printf("service: %d/%d correct, avg %v, p99 %v\n", correct, len(lat), stats.Avg, stats.P99)

	// Local explanation: which pixels did the matched paths test?
	sample := test.X[0]
	label, _, err := client.Classify(sample)
	if err != nil {
		log.Fatal(err)
	}
	counts, err := client.Salience(sample)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsample 0 classified as %d (true %d); salience map (#=tested pixel, .=ink):\n",
		label, test.Y[0])
	renderSalience(sample, counts)
}

// renderSalience prints the 28×28 image with salient pixels marked.
func renderSalience(img []float32, counts []int) {
	for y := 0; y < 28; y++ {
		row := make([]byte, 28)
		for x := 0; x < 28; x++ {
			idx := y*28 + x
			switch {
			case counts[idx] > 0:
				row[x] = '#'
			case img[idx] > 100:
				row[x] = '.'
			default:
				row[x] = ' '
			}
		}
		fmt.Println(string(row))
	}
}
