// Quickstart: the minimal Bolt journey — generate data, train a random
// forest, compile it into lookup tables, classify, and verify the
// safety property (compiled votes == forest votes, exactly).
package main

import (
	"fmt"
	"log"

	"bolt"
)

func main() {
	// An easy 3-class problem: Gaussian blobs in 8 dimensions.
	data := bolt.SyntheticBlobs(1000, 8, 3, 1.2, 42)
	train, test := data.Split(0.8, 1)

	// The paper's standard shape: a small ensemble of shallow trees.
	f := bolt.Train(train, bolt.ForestConfig{
		NumTrees: 10,
		Tree:     bolt.TreeConfig{MaxDepth: 4},
		Seed:     7,
	})

	// Phase 1 + 3: paths -> clusters -> dictionary + lookup table (+ bloom).
	bf, err := bolt.Compile(f, bolt.Options{})
	if err != nil {
		log.Fatal(err)
	}
	st := bf.Stats()
	fmt.Printf("compiled %d paths into %d dictionary entries and %d table entries\n",
		f.NumPaths(), st.DictEntries, st.TableEntries)

	// Safety: Bolt is a lossless transformation (paper footnote 1).
	if err := bf.CheckSafety(f, test.X); err != nil {
		log.Fatal(err)
	}
	fmt.Println("safety verified: Bolt votes equal forest votes on every test sample")

	// Classify.
	p := bolt.NewPredictor(bf)
	pred := make([]int, test.Len())
	for i, x := range test.X {
		pred[i] = p.Predict(x)
	}
	fmt.Printf("test accuracy: %.3f over %d samples\n", bolt.Accuracy(pred, test.Y), test.Len())
}
