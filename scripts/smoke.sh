#!/usr/bin/env bash
# End-to-end smoke test: train a tiny forest, compile it, serve it, and
# classify through the client — the full §4.5 pipeline as CI exercises
# it on every push. Exits non-zero if any stage fails or the round trip
# misbehaves.
set -euo pipefail

workdir=$(mktemp -d)
sock="$workdir/bolt.sock"
serve_pid=""
extra_pids=()
cleanup() {
    [ -n "$serve_pid" ] && kill "$serve_pid" 2>/dev/null || true
    [ -n "$serve_pid" ] && wait "$serve_pid" 2>/dev/null || true
    for p in ${extra_pids[@]+"${extra_pids[@]}"}; do
        kill "$p" 2>/dev/null || true
        wait "$p" 2>/dev/null || true
    done
    rm -rf "$workdir"
}
trap cleanup EXIT

echo "== build =="
go build -o "$workdir" ./cmd/bolt-train ./cmd/bolt-compile ./cmd/bolt-serve ./cmd/bolt-client ./cmd/bolt-router

echo "== train =="
"$workdir/bolt-train" -dataset lstw -samples 600 -trees 5 -depth 4 \
    -out "$workdir/forest.bin"

echo "== compile =="
"$workdir/bolt-compile" -model "$workdir/forest.bin" -dataset lstw \
    -out "$workdir/forest.bfc"

echo "== serve =="
"$workdir/bolt-serve" -compiled "$workdir/forest.bfc" -socket "$sock" \
    -workers 4 &
serve_pid=$!

# Wait for the socket to appear (up to ~5 s).
for _ in $(seq 50); do
    [ -S "$sock" ] && break
    kill -0 "$serve_pid" 2>/dev/null || { echo "bolt-serve died" >&2; exit 1; }
    sleep 0.1
done
[ -S "$sock" ] || { echo "socket never appeared" >&2; exit 1; }

echo "== classify =="
out=$("$workdir/bolt-client" -socket "$sock" -dataset lstw -n 200 -timeout 10s)
echo "$out"
echo "$out" | grep -q "classified 200 samples" || {
    echo "client round trip failed" >&2
    exit 1
}

echo "== batch =="
"$workdir/bolt-client" -socket "$sock" -dataset lstw -n 200 -batch 50 -timeout 10s \
    | grep -q "classified 200 samples" || { echo "batch round trip failed" >&2; exit 1; }

echo "== stats =="
stats=$("$workdir/bolt-client" stats -socket "$sock" -timeout 10s)
echo "$stats"
echo "$stats" | grep -q "4 workers" || { echo "stats missing worker count" >&2; exit 1; }
echo "$stats" | grep -Eq "op C: +[1-9]" || { echo "stats missing classify counters" >&2; exit 1; }

# Tear down the compiled-artifact server before the reload scenario.
kill "$serve_pid" 2>/dev/null || true
wait "$serve_pid" 2>/dev/null || true
serve_pid=""
rm -f "$sock"

echo "== reload under load =="
# Serve from the raw model path so SIGHUP recompiles whatever is on
# disk; swap the model mid-traffic and require zero client errors.
"$workdir/bolt-serve" -model "$workdir/forest.bin" -socket "$sock" \
    -workers 4 -drain 5s > "$workdir/serve.log" &
serve_pid=$!
for _ in $(seq 50); do
    [ -S "$sock" ] && break
    kill -0 "$serve_pid" 2>/dev/null || { echo "bolt-serve died" >&2; exit 1; }
    sleep 0.1
done
[ -S "$sock" ] || { echo "socket never appeared" >&2; exit 1; }

"$workdir/bolt-client" health -socket "$sock" -timeout 10s \
    | grep -q "state ready" || { echo "health not ready" >&2; exit 1; }

# Background traffic: batches with retries armed, spanning the swap.
"$workdir/bolt-client" -socket "$sock" -dataset lstw -n 2000 -batch 20 \
    -retries 5 -backoff 5ms -timeout 10s > "$workdir/client.log" 2>&1 &
client_pid=$!

# Retrain into the same path with a different seed, then hot-reload.
sleep 0.2
"$workdir/bolt-train" -dataset lstw -samples 600 -trees 5 -depth 4 \
    -seed 4242 -out "$workdir/forest.bin" > /dev/null
kill -HUP "$serve_pid"

wait "$client_pid" || {
    echo "client failed during reload:" >&2
    cat "$workdir/client.log" >&2
    exit 1
}
grep -q "classified 2000 samples" "$workdir/client.log" || {
    echo "reload-under-load traffic incomplete" >&2
    cat "$workdir/client.log" >&2
    exit 1
}

health=$("$workdir/bolt-client" health -socket "$sock" -timeout 10s)
echo "$health"
echo "$health" | grep -Eq "[1-9][0-9]* reloads" || { echo "reload not recorded" >&2; exit 1; }

stats=$("$workdir/bolt-client" stats -socket "$sock" -timeout 10s)
echo "$stats"
echo "$stats" | grep -q " 0 errors" || { echo "server saw errors across reload" >&2; exit 1; }

# Graceful SIGTERM must print the final stats snapshot.
kill -TERM "$serve_pid"
wait "$serve_pid" || true
serve_pid=""
grep -q "served .* requests" "$workdir/serve.log" || {
    echo "final stats snapshot missing from serve log" >&2
    cat "$workdir/serve.log" >&2
    exit 1
}

echo "== coalesce under concurrency =="
# Fresh server with a generous hold so CI's slow schedulers still form
# batches. A serial baseline client records the row-path answers; 16
# concurrent single-row clients then send the identical probe set, and
# every one must report the exact same accuracy line (bit-exact labels)
# while the server's stats prove coalesced batches actually ran.
rm -f "$sock"
"$workdir/bolt-serve" -compiled "$workdir/forest.bfc" -socket "$sock" \
    -workers 4 -coalesce-hold 1ms > "$workdir/coserve.log" &
serve_pid=$!
for _ in $(seq 50); do
    [ -S "$sock" ] && break
    kill -0 "$serve_pid" 2>/dev/null || { echo "bolt-serve died" >&2; exit 1; }
    sleep 0.1
done
[ -S "$sock" ] || { echo "socket never appeared" >&2; exit 1; }
grep -q "request coalescing on" "$workdir/coserve.log" || {
    echo "server did not announce coalescing" >&2
    cat "$workdir/coserve.log" >&2
    exit 1
}

base=$("$workdir/bolt-client" -socket "$sock" -dataset lstw -n 120 -timeout 10s \
    | grep "classified 120 samples") || { echo "baseline classify failed" >&2; exit 1; }

# The tiny smoke forest predicts in ~1µs, so the adaptive solo bypass
# wins most of the time on a lightly loaded host; batch formation under
# a client wave is probabilistic. Counters are cumulative, so run up to
# three waves and stop as soon as the server reports a coalesced batch.
stats=""
for wave in 1 2 3; do
    copids=()
    for i in $(seq 32); do
        "$workdir/bolt-client" -socket "$sock" -dataset lstw -n 120 -timeout 30s \
            > "$workdir/co.$i.log" 2>&1 &
        copids+=($!)
    done
    for pid in "${copids[@]}"; do
        wait "$pid" || {
            echo "concurrent coalesce client failed (wave $wave):" >&2
            cat "$workdir"/co.*.log >&2
            exit 1
        }
    done
    for i in $(seq 32); do
        grep -qF "$base" "$workdir/co.$i.log" || {
            echo "coalesced replies diverged from row-path baseline (wave $wave, client $i):" >&2
            echo "baseline: $base" >&2
            cat "$workdir/co.$i.log" >&2
            exit 1
        }
    done
    stats=$("$workdir/bolt-client" stats -socket "$sock" -timeout 10s)
    echo "$stats" | grep -Eq "coalesced batches: [1-9]" && break
done

echo "$stats"
echo "$stats" | grep -Eq "coalesced batches: [1-9]" || {
    echo "no coalesced batches formed across 3 waves of 32 concurrent clients" >&2
    exit 1
}
echo "$stats" | grep -q " 0 errors" || { echo "server saw errors under coalesced load" >&2; exit 1; }

# Tear down the coalesce server before the replicated-tier scenario.
kill "$serve_pid" 2>/dev/null || true
wait "$serve_pid" 2>/dev/null || true
serve_pid=""

echo "== tiered early exit =="
# Exact-mode tiering over 4 of the model's 5 trees — a majority, so
# tier-0 leads can actually clear the remaining tree's weight. The
# tiered server's batch labels must be bit-exact with an untier'd
# baseline serving the same model (exact mode provably cannot flip an
# argmax), and the stats wire must show samples answered at tier 0.
rm -f "$sock"
"$workdir/bolt-serve" -model "$workdir/forest.bin" -socket "$sock" \
    -workers 2 > "$workdir/tbase.log" &
serve_pid=$!
for _ in $(seq 50); do
    [ -S "$sock" ] && break
    kill -0 "$serve_pid" 2>/dev/null || { echo "bolt-serve died" >&2; exit 1; }
    sleep 0.1
done
[ -S "$sock" ] || { echo "socket never appeared" >&2; exit 1; }
tbase=$("$workdir/bolt-client" -socket "$sock" -dataset lstw -n 240 -batch 60 -timeout 10s \
    | grep "classified 240 samples") || { echo "untier'd baseline classify failed" >&2; exit 1; }
kill "$serve_pid" 2>/dev/null || true
wait "$serve_pid" 2>/dev/null || true
serve_pid=""
rm -f "$sock"

"$workdir/bolt-serve" -model "$workdir/forest.bin" -socket "$sock" \
    -workers 2 -tier-trees 4 > "$workdir/tier.log" &
serve_pid=$!
for _ in $(seq 50); do
    [ -S "$sock" ] && break
    kill -0 "$serve_pid" 2>/dev/null || { echo "bolt-serve died" >&2; exit 1; }
    sleep 0.1
done
[ -S "$sock" ] || { echo "socket never appeared" >&2; exit 1; }
grep -q "tiered inference on" "$workdir/tier.log" || {
    echo "server did not announce tiered inference" >&2
    cat "$workdir/tier.log" >&2
    exit 1
}

tout=$("$workdir/bolt-client" -socket "$sock" -dataset lstw -n 240 -batch 60 -timeout 10s \
    | grep "classified 240 samples") || { echo "tiered classify failed" >&2; exit 1; }
[ "$tout" = "$tbase" ] || {
    echo "exact-mode tiered output diverged from the untier'd baseline:" >&2
    echo "baseline: $tbase" >&2
    echo "tiered:   $tout" >&2
    exit 1
}

stats=$("$workdir/bolt-client" stats -socket "$sock" -timeout 10s)
echo "$stats"
echo "$stats" | grep -Eq "tiered: [1-9][0-9]* answered at tier 0" || {
    echo "no samples answered at tier 0 in exact mode" >&2
    exit 1
}
echo "$stats" | grep -q " 0 errors" || { echo "server saw errors under tiered load" >&2; exit 1; }

# Tear down the tiered server before the replicated-tier scenario.
kill "$serve_pid" 2>/dev/null || true
wait "$serve_pid" 2>/dev/null || true
serve_pid=""

echo "== replicated tier through bolt-router =="
# Three backends behind one router; SIGKILL a backend mid-wave and
# require zero client-visible errors, then prove the breaker tripped
# and re-admitted the restarted replica.
for i in 0 1 2; do
    "$workdir/bolt-serve" -compiled "$workdir/forest.bfc" -socket "$workdir/be$i.sock" \
        -workers 2 > "$workdir/be$i.log" &
    extra_pids+=($!)
done
for i in 0 1 2; do
    for _ in $(seq 50); do
        [ -S "$workdir/be$i.sock" ] && break
        sleep 0.1
    done
    [ -S "$workdir/be$i.sock" ] || { echo "backend $i socket never appeared" >&2; exit 1; }
done

rsock="$workdir/router.sock"
"$workdir/bolt-router" -listen "$rsock" \
    -backends "$workdir/be0.sock,$workdir/be1.sock,$workdir/be2.sock" \
    -probe-interval 25ms -probe-timeout 500ms -breaker-threshold 2 \
    -breaker-cooldown 100ms -retries 4 -queue-wait 2s -drain 5s \
    > "$workdir/router.log" &
router_pid=$!
extra_pids+=("$router_pid")
for _ in $(seq 50); do
    [ -S "$rsock" ] && break
    kill -0 "$router_pid" 2>/dev/null || { echo "bolt-router died" >&2; cat "$workdir/router.log" >&2; exit 1; }
    sleep 0.1
done
[ -S "$rsock" ] || { echo "router socket never appeared" >&2; exit 1; }

# A stock bolt-client works against the router unchanged.
"$workdir/bolt-client" health -socket "$rsock" -timeout 10s | grep -q "3 workers" || {
    echo "router health does not report 3 backends in rotation" >&2
    exit 1
}

# Client wave with retries armed, spanning the backend kill.
"$workdir/bolt-client" -socket "$rsock" -dataset lstw -n 4000 \
    -retries 8 -backoff 5ms -timeout 10s > "$workdir/rclient.log" 2>&1 &
rclient_pid=$!

sleep 0.2
# SIGKILL backend 1 mid-wave: no drain, connections die mid-whatever.
kill -9 "${extra_pids[1]}" 2>/dev/null || true
sleep 0.4   # probes (25ms apart, threshold 2) trip the breaker here
"$workdir/bolt-serve" -compiled "$workdir/forest.bfc" -socket "$workdir/be1.sock" \
    -workers 2 > "$workdir/be1-restarted.log" &
extra_pids[1]=$!
for _ in $(seq 50); do
    [ -S "$workdir/be1.sock" ] && break
    sleep 0.1
done

wait "$rclient_pid" || {
    echo "client saw errors while a backend was killed and restarted:" >&2
    cat "$workdir/rclient.log" >&2
    exit 1
}
grep -q "classified 4000 samples" "$workdir/rclient.log" || {
    echo "router wave traffic incomplete" >&2
    cat "$workdir/rclient.log" >&2
    exit 1
}

# Wait for the half-open probe to re-admit the restarted backend.
readmitted=""
for _ in $(seq 100); do
    if "$workdir/bolt-client" health -socket "$rsock" -timeout 10s | grep -q "3 workers"; then
        readmitted=yes
        break
    fi
    sleep 0.1
done
[ -n "$readmitted" ] || { echo "restarted backend never re-admitted" >&2; exit 1; }

stats=$("$workdir/bolt-client" stats -socket "$rsock" -timeout 10s)
echo "$stats"
echo "$stats" | grep -q "router:" || { echo "stats missing router section" >&2; exit 1; }
echo "$stats" | grep -Eq "trips=[1-9]" || { echo "breaker never tripped" >&2; exit 1; }
echo "$stats" | grep -Eq "readmits=[1-9]" || { echo "breaker never re-closed" >&2; exit 1; }

# Graceful SIGTERM must print the final routing snapshot.
kill -TERM "$router_pid"
wait "$router_pid" 2>/dev/null || true
grep -q "routed .* requests" "$workdir/router.log" || {
    echo "final routing snapshot missing from router log" >&2
    cat "$workdir/router.log" >&2
    exit 1
}
grep -Eq "trips=[1-9]" "$workdir/router.log" || {
    echo "final snapshot missing breaker trip" >&2
    cat "$workdir/router.log" >&2
    exit 1
}

echo "smoke OK"
