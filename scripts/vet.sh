#!/usr/bin/env bash
# Full static gate in one command, exactly as CI runs it: compile,
# stock go vet, then the project analysis suite (boltvet) over package
# and test sources for the whole module — the tests-included ./...
# invocation is what arms the module-wide rules (faultcover's registry
# audit) and the unused-//bolt:allow report, so a clean exit here also
# asserts zero stale suppressions. Run it locally before pushing.
#
# Set BOLTVET to a prebuilt binary to skip the build step (CI does this
# to reuse its cached build); otherwise one is built into $TMPDIR.
set -euo pipefail
cd "$(dirname "$0")/.."

go build ./...
go vet ./...
if [ -z "${BOLTVET:-}" ]; then
  BOLTVET="${TMPDIR:-/tmp}/boltvet"
  go build -o "$BOLTVET" ./cmd/boltvet
fi
"$BOLTVET" ./...
echo "vet.sh: clean"
