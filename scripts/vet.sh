#!/usr/bin/env bash
# Full static gate in one command, exactly as CI runs it: compile,
# stock go vet, then the project analysis suite (boltvet) over package
# and test sources. Run it locally before pushing.
set -euo pipefail
cd "$(dirname "$0")/.."

go build ./...
go vet ./...
go build -o "${TMPDIR:-/tmp}/boltvet" ./cmd/boltvet
"${TMPDIR:-/tmp}/boltvet" ./...
echo "vet.sh: clean"
